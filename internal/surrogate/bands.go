package surrogate

import (
	"fmt"
	"math"

	"spinwave/internal/core"
)

// Golden tolerance bands, mirroring the paper-regression suite
// (golden_test.go / EXPERIMENTS.md E-T1, E-T2). The admission gate
// re-applies them to superposed readouts: if linearization shifted any
// row out of the band that the exact solver sits inside, the surrogate
// must not serve.
const (
	// unanimousTol bounds |normalized − 1| on unanimous Majority rows
	// and constructive XOR rows.
	unanimousTol = 0.1
	// mixedLo/mixedHi bound the normalized amplitude of mixed 3-input
	// Majority rows (paper 0.083–0.164, behavioral 1/3, measured ≤0.44).
	mixedLo, mixedHi = 0.02, 0.5
	// phaseTol bounds the distance of an output phase from its expected
	// 0/π boundary.
	phaseTol = 0.2
	// destructiveMax bounds destructive XOR rows (paper ≈0).
	destructiveMax = 0.1
	// fanoutTol bounds |O1 − O2| per row, the micromag-grade fan-out
	// equivalence tolerance.
	fanoutTol = 0.02
)

// checkMajorityBands validates a Table-I style truth table against the
// golden bands, returning one message per violation. The mixed-row
// amplitude band is calibrated for 3-input gates and is only applied
// there (a 4:1 split of a 5-input gate legitimately sits at 3/5);
// decode correctness, phase and fan-out bands apply to every width.
func checkMajorityBands(tt *core.TruthTable, numInputs int) []string {
	var v []string
	if want := 1 << numInputs; len(tt.Cases) != want {
		return []string{fmt.Sprintf("table has %d cases, want %d", len(tt.Cases), want)}
	}
	if !tt.AllCorrect() {
		v = append(v, "truth table decodes incorrectly")
	}
	if m := tt.FanOutMatched(); m > fanoutTol {
		v = append(v, fmt.Sprintf("fan-out mismatch |O1-O2| = %.4f > %.4f", m, fanoutTol))
	}
	if len(tt.Cases[0].Outputs) == 0 {
		return append(v, "reference case has no outputs")
	}
	refPhase := tt.Cases[0].Outputs[0].Phase
	for _, c := range tt.Cases {
		ones := 0
		for _, in := range c.Inputs {
			if in {
				ones++
			}
		}
		unanimous := ones == 0 || ones == len(c.Inputs)
		wantLogic := ones*2 > len(c.Inputs)
		for _, o := range c.Outputs {
			if unanimous {
				if d := math.Abs(o.Normalized - 1); d > unanimousTol {
					v = append(v, fmt.Sprintf("case %v %s: unanimous row normalized %.3f, want 1±%.1f",
						c.Inputs, o.Name, o.Normalized, unanimousTol))
				}
			} else if numInputs == 3 && (o.Normalized < mixedLo || o.Normalized > mixedHi) {
				v = append(v, fmt.Sprintf("case %v %s: mixed row normalized %.3f, want [%.2f, %.1f]",
					c.Inputs, o.Name, o.Normalized, mixedLo, mixedHi))
			}
			want := refPhase
			if wantLogic {
				want += math.Pi
			}
			if d := math.Abs(wrapPhase(o.Phase - want)); d > phaseTol {
				v = append(v, fmt.Sprintf("case %v %s: phase %.3f rad is %.3f from the expected boundary",
					c.Inputs, o.Name, o.Phase, d))
			}
			if o.Logic != wantLogic {
				v = append(v, fmt.Sprintf("case %v %s: decoded %v, want %v", c.Inputs, o.Name, o.Logic, wantLogic))
			}
		}
	}
	return v
}

// checkXORBands validates a Table-II style truth table against the
// golden bands, returning one message per violation.
func checkXORBands(tt *core.TruthTable) []string {
	var v []string
	if len(tt.Cases) != 4 {
		return []string{fmt.Sprintf("table has %d cases, want 4", len(tt.Cases))}
	}
	if !tt.AllCorrect() {
		v = append(v, "truth table decodes incorrectly")
	}
	if m := tt.FanOutMatched(); m > fanoutTol {
		v = append(v, fmt.Sprintf("fan-out mismatch |O1-O2| = %.4f > %.4f", m, fanoutTol))
	}
	for _, c := range tt.Cases {
		destructive := c.Inputs[0] != c.Inputs[1]
		for _, o := range c.Outputs {
			if destructive {
				if o.Normalized > destructiveMax {
					v = append(v, fmt.Sprintf("case %v %s: destructive row normalized %.3f > %.1f",
						c.Inputs, o.Name, o.Normalized, destructiveMax))
				}
			} else if d := math.Abs(o.Normalized - 1); d > unanimousTol {
				v = append(v, fmt.Sprintf("case %v %s: constructive row normalized %.3f, want 1±%.1f",
					c.Inputs, o.Name, o.Normalized, unanimousTol))
			}
			if o.Logic != destructive {
				v = append(v, fmt.Sprintf("case %v %s: decoded %v, want %v", c.Inputs, o.Name, o.Logic, destructive))
			}
		}
	}
	return v
}

// wrapPhase maps an angle to (−π, π].
func wrapPhase(p float64) float64 {
	for p > math.Pi {
		p -= 2 * math.Pi
	}
	for p <= -math.Pi {
		p += 2 * math.Pi
	}
	return p
}

// Package surrogate implements the linear-superposition surrogate model
// of a triangle gate (ROADMAP: "cheap heavy traffic"): because the gates
// operate in the linear spin-wave regime, any input combination's
// detector readout is, to first order, the phase-signed complex sum of
// per-port unit responses. The model therefore runs ONE transient per
// input port (that port driven at logic 0, the others switched off),
// stores the per-detector complex response of each port, and answers an
// arbitrary n-input case in O(detectors · ports) by superposing the
// stored phasors with sign (−1)^bit — the same superposition that makes
// the paper's phase-encoded majority voting and XOR interference work.
//
// A model is only trustworthy if superposition actually holds for the
// backend it was built from (the micromagnetic solver is weakly
// nonlinear), so Verify is the admission gate: it assembles the full
// Table I/Table II truth table from superposed readouts and checks every
// row against the golden tolerance bands of the repo's paper-regression
// suite. A model that fails any band must not serve traffic; the
// evaluation engine (internal/engine.AdmitSurrogate) enforces exactly
// that and journals the verdict.
package surrogate

import (
	"context"
	"fmt"
	"math/cmplx"
	"sort"
	"strings"
	"time"

	"spinwave/internal/core"
	"spinwave/internal/detect"
	"spinwave/internal/journal"
)

// UnitRunner is a backend that can excite one input port in isolation —
// the build primitive of the surrogate. Both built-in backends qualify:
// core.Micromagnetic (real solver transient per port) and
// core.Behavioral (exact, used by fast tests).
type UnitRunner interface {
	core.Backend
	// RunSingleContext drives only the named input at logic 0 (the other
	// transducers switched off) and returns the detector readouts.
	RunSingleContext(ctx context.Context, port string) (map[string]detect.Readout, error)
}

// PortResponse is one input port's unit response: the complex amplitude
// arriving at every detector when only this port drives at logic 0.
type PortResponse struct {
	// Port is the input transducer name ("I1", "I2", ...).
	Port string
	// Response maps detector name ("O1", "O2") to the unit phasor.
	Response map[string]complex128
}

// Model is an immutable linear-superposition surrogate for one
// (backend fingerprint, gate kind). Build one with Build (runs the
// per-port transients) or FromPorts (pre-measured responses); it is safe
// for concurrent use after construction.
type Model struct {
	kind      core.GateKind
	source    string // name of the backend the unit responses came from
	baseFP    string // canonical fingerprint of that backend
	detectors []string
	ports     []PortResponse // in core.GateKind.InputNames order

	buildSeconds float64
}

// Build measures one unit transient per input port of src and assembles
// the surrogate. src must be canonically fingerprintable (the model is
// keyed by that identity); a backend with ad-hoc mutations has no stable
// identity to serve under and is rejected. Build journals
// surrogate.build.* events; each port transient runs under its own run
// ID so the flight recorder sees ordinary run lifecycles.
func Build(ctx context.Context, src UnitRunner) (*Model, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	fper, ok := src.(core.Fingerprinter)
	if !ok {
		return nil, fmt.Errorf("surrogate: backend %s is not fingerprintable", src.Name())
	}
	baseFP, ok := fper.Fingerprint()
	if !ok {
		return nil, fmt.Errorf("surrogate: backend %s has no canonical fingerprint (mutator hook installed?)", src.Name())
	}
	names := src.Kind().InputNames()
	j := journal.Default()
	if j.Enabled() {
		j.Emit("", "surrogate.build.start",
			journal.F("gate", src.Kind().String()),
			journal.F("backend", src.Name()),
			journal.F("fingerprint", baseFP),
			journal.F("ports", len(names)))
	}
	start := time.Now()
	ports := make([]PortResponse, 0, len(names))
	for _, port := range names {
		pStart := time.Now()
		out, err := src.RunSingleContext(ctx, port)
		if err != nil {
			if j.Enabled() {
				j.Emit("", "surrogate.build.error",
					journal.F("port", port), journal.F("error", err.Error()))
			}
			return nil, fmt.Errorf("surrogate: port %s transient: %w", port, err)
		}
		resp := make(map[string]complex128, len(out))
		for det, r := range out {
			resp[det] = r.Phasor()
		}
		ports = append(ports, PortResponse{Port: port, Response: resp})
		if j.Enabled() {
			j.Emit("", "surrogate.build.port",
				journal.F("port", port),
				journal.F("detectors", len(resp)),
				journal.F("elapsed_ms", time.Since(pStart).Seconds()*1e3))
		}
	}
	m, err := FromPorts(src.Kind(), baseFP, src.Name(), ports)
	if err != nil {
		return nil, err
	}
	m.buildSeconds = time.Since(start).Seconds()
	if j.Enabled() {
		j.Emit("", "surrogate.build.done",
			journal.F("gate", src.Kind().String()),
			journal.F("fingerprint", baseFP),
			journal.F("elapsed_ms", m.buildSeconds*1e3))
	}
	return m, nil
}

// FromPorts assembles a surrogate from pre-measured unit responses, one
// PortResponse per input of kind, in InputNames order. Every port must
// report the same detector set.
func FromPorts(kind core.GateKind, baseFingerprint, sourceBackend string, ports []PortResponse) (*Model, error) {
	names := kind.InputNames()
	if len(ports) != len(names) {
		return nil, fmt.Errorf("surrogate: %s needs %d port responses, got %d", kind, len(names), len(ports))
	}
	if baseFingerprint == "" {
		return nil, fmt.Errorf("surrogate: empty base fingerprint")
	}
	for i, p := range ports {
		if p.Port != names[i] {
			return nil, fmt.Errorf("surrogate: port %d is %q, want %q (InputNames order)", i, p.Port, names[i])
		}
		if len(p.Response) == 0 {
			return nil, fmt.Errorf("surrogate: port %s has no detector responses", p.Port)
		}
	}
	detectors := make([]string, 0, len(ports[0].Response))
	for det := range ports[0].Response {
		detectors = append(detectors, det)
	}
	sort.Strings(detectors)
	for _, p := range ports[1:] {
		if len(p.Response) != len(detectors) {
			return nil, fmt.Errorf("surrogate: port %s sees %d detectors, port %s sees %d",
				p.Port, len(p.Response), ports[0].Port, len(detectors))
		}
		for _, det := range detectors {
			if _, ok := p.Response[det]; !ok {
				return nil, fmt.Errorf("surrogate: port %s is missing detector %s", p.Port, det)
			}
		}
	}
	// Deep-copy the responses so the model is immutable from outside.
	cp := make([]PortResponse, len(ports))
	for i, p := range ports {
		resp := make(map[string]complex128, len(p.Response))
		for det, v := range p.Response {
			resp[det] = v
		}
		cp[i] = PortResponse{Port: p.Port, Response: resp}
	}
	return &Model{
		kind:      kind,
		source:    sourceBackend,
		baseFP:    baseFingerprint,
		detectors: detectors,
		ports:     cp,
	}, nil
}

// Name implements core.Backend.
func (m *Model) Name() string { return "surrogate" }

// Kind implements core.Backend.
func (m *Model) Kind() core.GateKind { return m.kind }

// SourceBackend names the backend the unit responses were measured on
// ("micromagnetic", "behavioral").
func (m *Model) SourceBackend() string { return m.source }

// BaseFingerprint is the canonical fingerprint of the source backend —
// the key the engine matches incoming requests against.
func (m *Model) BaseFingerprint() string { return m.baseFP }

// BuildSeconds is the wall-clock cost of the per-port transients (zero
// for models assembled with FromPorts).
func (m *Model) BuildSeconds() float64 { return m.buildSeconds }

// Detectors returns the detector names, sorted.
func (m *Model) Detectors() []string { return append([]string(nil), m.detectors...) }

// Ports returns the number of stored unit responses.
func (m *Model) Ports() int { return len(m.ports) }

// Fingerprint implements core.Fingerprinter with an identity distinct
// from the source backend's, so engine cache entries for surrogate
// evaluations never collide with exact-solver entries under the same
// base fingerprint.
func (m *Model) Fingerprint() (string, bool) {
	return "surrogate/v1|" + m.baseFP, true
}

// Eval superposes the stored unit phasors for one input case: logic 0
// contributes +U_p, logic 1 (a π phase flip of the same drive)
// contributes −U_p, and the detector readout is the magnitude and phase
// of the sum — O(detectors · ports), no solver in the loop.
func (m *Model) Eval(inputs []bool) (map[string]detect.Readout, error) {
	if len(inputs) != m.kind.NumInputs() {
		return nil, fmt.Errorf("surrogate: %w: %s needs %d inputs, got %d",
			core.ErrBadInputCount, m.kind, m.kind.NumInputs(), len(inputs))
	}
	out := make(map[string]detect.Readout, len(m.detectors))
	for _, det := range m.detectors {
		var sum complex128
		for i, p := range m.ports {
			if inputs[i] {
				sum -= p.Response[det]
			} else {
				sum += p.Response[det]
			}
		}
		out[det] = detect.FromPhasor(det, sum)
	}
	return out, nil
}

// Run implements core.Backend.
func (m *Model) Run(inputs []bool) (map[string]detect.Readout, error) {
	return m.Eval(inputs)
}

// RunContext implements core.ContextBackend; evaluation is O(detectors)
// so the context is only checked up front.
func (m *Model) RunContext(ctx context.Context, inputs []bool) (map[string]detect.Readout, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return m.Eval(inputs)
}

// Perturbed returns a copy of the model with every stored phasor rotated
// by phaseErr radians on alternating signs per port — a deliberately
// destabilized surrogate for exercising the admission gate (a real
// model drifting like this must be rejected, not served).
func (m *Model) Perturbed(phaseErr float64) *Model {
	cp := make([]PortResponse, len(m.ports))
	for i, p := range m.ports {
		rot := cmplx.Exp(complex(0, phaseErr))
		if i%2 == 1 {
			rot = cmplx.Exp(complex(0, -phaseErr))
		}
		resp := make(map[string]complex128, len(p.Response))
		for det, v := range p.Response {
			resp[det] = v * rot
		}
		cp[i] = PortResponse{Port: p.Port, Response: resp}
	}
	return &Model{
		kind:         m.kind,
		source:       m.source,
		baseFP:       m.baseFP,
		detectors:    append([]string(nil), m.detectors...),
		ports:        cp,
		buildSeconds: m.buildSeconds,
	}
}

// Tables assembles the surrogate's full truth table — Table II for XOR,
// Table I for the Majority family — from superposed readouts, decoded
// exactly as the exact backends' tables are (the all-zeros superposition
// is the normalization/phase reference).
func (m *Model) Table() (*core.TruthTable, error) {
	ins := core.EnumerateInputs(m.kind.NumInputs())
	outs := make([]map[string]detect.Readout, len(ins))
	for i, in := range ins {
		out, err := m.Eval(in)
		if err != nil {
			return nil, err
		}
		outs[i] = out
	}
	if m.kind == core.XOR {
		return core.AssembleXORTable(m.Name(), false, outs[0], outs)
	}
	return core.AssembleMajorityTable(m.kind, m.Name(), outs[0], outs)
}

// Verify is the admission gate: it assembles the surrogate's truth table
// and checks every row against the golden tolerance bands of the paper
// regression suite (Tables I/II). A nil return means every row is inside
// the bands; otherwise the error lists each violated band. Only a model
// that passes Verify may be admitted to serving.
func (m *Model) Verify() error {
	tt, err := m.Table()
	if err != nil {
		return fmt.Errorf("surrogate: admission table: %w", err)
	}
	var violations []string
	if m.kind == core.XOR {
		violations = checkXORBands(tt)
	} else {
		violations = checkMajorityBands(tt, m.kind.NumInputs())
	}
	if len(violations) > 0 {
		return fmt.Errorf("surrogate: admission rejected, %d band violation(s): %s",
			len(violations), strings.Join(violations, "; "))
	}
	return nil
}

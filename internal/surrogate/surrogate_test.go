package surrogate

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"spinwave/internal/core"
	"spinwave/internal/layout"
	"spinwave/internal/material"
)

func behavioral(t *testing.T, kind core.GateKind) *core.Behavioral {
	t.Helper()
	b, err := core.NewBehavioral(kind, layout.PaperSpec(), material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestBuildFromBehavioralAdmits: the behavioral model is exactly linear,
// so a surrogate built from it must pass the golden-band admission gate
// for every gate of the paper and decode its full truth table correctly.
func TestBuildFromBehavioralAdmits(t *testing.T) {
	for _, kind := range []core.GateKind{core.XOR, core.MAJ3, core.MAJ3Single, core.MAJ5} {
		t.Run(kind.String(), func(t *testing.T) {
			b := behavioral(t, kind)
			m, err := Build(context.Background(), b)
			if err != nil {
				t.Fatal(err)
			}
			if m.Ports() != kind.NumInputs() {
				t.Fatalf("Ports() = %d, want %d", m.Ports(), kind.NumInputs())
			}
			if m.SourceBackend() != "behavioral" {
				t.Errorf("SourceBackend() = %q", m.SourceBackend())
			}
			if fp, ok := m.Fingerprint(); !ok || !strings.HasPrefix(fp, "surrogate/v1|") {
				t.Errorf("Fingerprint() = %q, %v — want surrogate/v1| prefix", fp, ok)
			}
			if err := m.Verify(); err != nil {
				t.Fatalf("admission gate rejected an exactly-linear surrogate: %v", err)
			}
			tt, err := m.Table()
			if err != nil {
				t.Fatal(err)
			}
			if !tt.AllCorrect() {
				t.Fatalf("superposed truth table decodes incorrectly:\n%+v", tt.Cases)
			}
		})
	}
}

// TestSurrogateMatchesBehavioralExact pins row-by-row equivalence: for a
// linear backend, superposition must reproduce the exact solver's
// normalized amplitudes, not merely land inside the bands.
func TestSurrogateMatchesBehavioralExact(t *testing.T) {
	for _, kind := range []core.GateKind{core.XOR, core.MAJ3} {
		t.Run(kind.String(), func(t *testing.T) {
			b := behavioral(t, kind)
			m, err := Build(context.Background(), b)
			if err != nil {
				t.Fatal(err)
			}
			var want, got *core.TruthTable
			if kind == core.XOR {
				want, err = core.XORTruthTable(b, false)
			} else {
				want, err = core.MajorityTruthTable(b)
			}
			if err != nil {
				t.Fatal(err)
			}
			if got, err = m.Table(); err != nil {
				t.Fatal(err)
			}
			if len(got.Cases) != len(want.Cases) {
				t.Fatalf("case count %d, want %d", len(got.Cases), len(want.Cases))
			}
			for i := range want.Cases {
				w, g := want.Cases[i], got.Cases[i]
				for j := range w.Outputs {
					if g.Outputs[j].Logic != w.Outputs[j].Logic {
						t.Errorf("case %d output %d: logic %v, want %v", i, j, g.Outputs[j].Logic, w.Outputs[j].Logic)
					}
					if d := math.Abs(g.Outputs[j].Normalized - w.Outputs[j].Normalized); d > 1e-9 {
						t.Errorf("case %d output %d: normalized differs by %.3g from the exact table", i, j, d)
					}
				}
			}
		})
	}
}

// TestPerturbedSurrogateRejected is the destabilized-surrogate admission
// test: rotating the stored phasors by ±0.3 rad pushes the superposed
// table out of the golden bands (the XOR destructive row rises to
// tan(0.3) ≈ 0.31 > 0.1; the MAJ3 phases shift past 0.2 rad), so Verify
// must refuse the model, while an unperturbed copy still passes.
func TestPerturbedSurrogateRejected(t *testing.T) {
	for _, kind := range []core.GateKind{core.XOR, core.MAJ3} {
		t.Run(kind.String(), func(t *testing.T) {
			m, err := Build(context.Background(), behavioral(t, kind))
			if err != nil {
				t.Fatal(err)
			}
			if err := m.Perturbed(0).Verify(); err != nil {
				t.Fatalf("zero perturbation must still pass admission: %v", err)
			}
			if err := m.Perturbed(0.3).Verify(); err == nil {
				t.Fatal("destabilized surrogate (0.3 rad phase error) passed the admission gate")
			} else if !strings.Contains(err.Error(), "admission rejected") {
				t.Fatalf("rejection error does not name the admission gate: %v", err)
			}
		})
	}
}

// TestFromPortsValidation covers the assembly error paths.
func TestFromPortsValidation(t *testing.T) {
	unit := map[string]complex128{"O1": 1, "O2": 1}
	ok2 := []PortResponse{{Port: "I1", Response: unit}, {Port: "I2", Response: unit}}
	for _, tc := range []struct {
		name  string
		kind  core.GateKind
		fp    string
		ports []PortResponse
		like  string
	}{
		{"wrong count", core.XOR, "fp", ok2[:1], "needs 2 port responses"},
		{"empty fingerprint", core.XOR, "", ok2, "empty base fingerprint"},
		{"wrong order", core.XOR, "fp",
			[]PortResponse{{Port: "I2", Response: unit}, {Port: "I1", Response: unit}},
			"InputNames order"},
		{"empty response", core.XOR, "fp",
			[]PortResponse{{Port: "I1", Response: nil}, {Port: "I2", Response: unit}},
			"no detector responses"},
		{"missing detector", core.XOR, "fp",
			[]PortResponse{{Port: "I1", Response: unit}, {Port: "I2", Response: map[string]complex128{"O1": 1}}},
			"sees 1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FromPorts(tc.kind, tc.fp, "test", tc.ports)
			if err == nil {
				t.Fatal("FromPorts accepted an invalid assembly")
			}
			if !strings.Contains(err.Error(), tc.like) {
				t.Fatalf("error %q does not mention %q", err, tc.like)
			}
		})
	}
}

// noFingerprint hides the behavioral backend's canonical identity.
type noFingerprint struct{ *core.Behavioral }

func (noFingerprint) Fingerprint() (string, bool) { return "", false }

// TestBuildRequiresFingerprint: a backend without a canonical identity
// has no stable key to serve a surrogate under; Build must refuse it.
func TestBuildRequiresFingerprint(t *testing.T) {
	if _, err := Build(context.Background(), noFingerprint{behavioral(t, core.XOR)}); err == nil {
		t.Fatal("Build accepted a backend with no canonical fingerprint")
	}
}

// TestEvalInputCount: a wrong-width case must fail with the shared
// sentinel so the serving layer maps it onto the bad_request code.
func TestEvalInputCount(t *testing.T) {
	m, err := Build(context.Background(), behavioral(t, core.XOR))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Eval([]bool{true}); !errors.Is(err, core.ErrBadInputCount) {
		t.Fatalf("Eval with 1 input: err = %v, want ErrBadInputCount", err)
	}
}

// TestSurrogateMicromagGoldenEquivalence is the full-fidelity check: a
// surrogate built from the real micromagnetic solver must pass the
// golden-band admission gate, and its superposed Tables I/II rows must
// decode to the same logic and sit within the band width (0.1
// normalized amplitude) of the exact solver's rows.
func TestSurrogateMicromagGoldenEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic transients: seconds to minutes of solver time")
	}
	for _, kind := range []core.GateKind{core.XOR, core.MAJ3} {
		t.Run(kind.String(), func(t *testing.T) {
			m, err := core.NewMicromagnetic(kind)
			if err != nil {
				t.Fatal(err)
			}
			if kind != core.XOR {
				if _, err := m.CalibrateI3(); err != nil {
					t.Fatal(err)
				}
			}
			sur, err := Build(context.Background(), m)
			if err != nil {
				t.Fatal(err)
			}
			if err := sur.Verify(); err != nil {
				t.Fatalf("micromag surrogate rejected by the admission gate: %v", err)
			}
			var exact *core.TruthTable
			if kind == core.XOR {
				exact, err = core.XORTruthTable(m, false)
			} else {
				exact, err = core.MajorityTruthTable(m)
			}
			if err != nil {
				t.Fatal(err)
			}
			approx, err := sur.Table()
			if err != nil {
				t.Fatal(err)
			}
			if len(approx.Cases) != len(exact.Cases) {
				t.Fatalf("case count %d, want %d", len(approx.Cases), len(exact.Cases))
			}
			for i := range exact.Cases {
				e, a := exact.Cases[i], approx.Cases[i]
				for j := range e.Outputs {
					if a.Outputs[j].Logic != e.Outputs[j].Logic {
						t.Errorf("case %d output %d: surrogate logic %v, exact %v",
							i, j, a.Outputs[j].Logic, e.Outputs[j].Logic)
					}
					if d := math.Abs(a.Outputs[j].Normalized - e.Outputs[j].Normalized); d > 0.1 {
						t.Errorf("case %d output %d: surrogate normalized off by %.3f (> 0.1) from exact", i, j, d)
					}
				}
			}
		})
	}
}

package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestChromeTraceSink(t *testing.T) {
	c := &ChromeTraceSink{}
	t0 := time.Unix(100, 0)
	c.Finish("micromag.setup", t0, 2*time.Millisecond, []Label{L("gate", "xor"), L("run", "r1")})
	c.Finish("micromag.transient", t0.Add(2*time.Millisecond), 50*time.Millisecond, []Label{L("run", "r1")})
	c.Finish("micromag.setup", t0.Add(time.Millisecond), time.Millisecond, nil)
	if c.Len() != 3 {
		t.Fatalf("retained %d spans", c.Len())
	}

	var sb strings.Builder
	if err := c.Export(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("trace is not JSON: %v", err)
	}
	// 2 thread_name metadata events + 3 complete events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("%d trace events, want 5", len(doc.TraceEvents))
	}
	var complete, meta int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
			if ev["ts"].(float64) < 0 {
				t.Errorf("negative ts in %v", ev)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %v", ev["ph"])
		}
	}
	if complete != 3 || meta != 2 {
		t.Errorf("complete=%d meta=%d", complete, meta)
	}
	// The run label must survive into args (unlike the histogram sink).
	if !strings.Contains(sb.String(), `"run":"r1"`) {
		t.Error("run label missing from trace args")
	}
}

func TestChromeTraceSinkCap(t *testing.T) {
	c := &ChromeTraceSink{MaxSpans: 2}
	for i := 0; i < 5; i++ {
		c.Finish("s", time.Unix(int64(i), 0), time.Millisecond, nil)
	}
	if c.Len() != 2 || c.Dropped() != 3 {
		t.Errorf("len=%d dropped=%d, want 2/3", c.Len(), c.Dropped())
	}
}

func TestTeeSink(t *testing.T) {
	a, b := &CollectingSink{}, &CollectingSink{}
	tee := TeeSink{a, nil, b}
	tee.Finish("s", time.Now(), time.Millisecond, nil)
	if len(a.Spans()) != 1 || len(b.Spans()) != 1 {
		t.Errorf("tee delivered %d/%d", len(a.Spans()), len(b.Spans()))
	}
}

// TestHistogramSinkDropsRunLabel pins the cardinality guard: per-run
// labels must not become histogram label sets.
func TestHistogramSinkDropsRunLabel(t *testing.T) {
	reg := NewRegistry()
	h := &HistogramSink{Registry: reg}
	h.Finish("op", time.Now(), time.Millisecond, []Label{L("gate", "xor"), L("run", "r1")})
	h.Finish("op", time.Now(), time.Millisecond, []Label{L("gate", "xor"), L("run", "r2")})
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Contains(out, "run=") {
		t.Errorf("run label leaked into metrics:\n%s", out)
	}
	if !strings.Contains(out, `gate="xor"`) || !strings.Contains(out, `span="op"`) {
		t.Errorf("expected labels missing:\n%s", out)
	}
	// Both spans must have landed in ONE series.
	if !strings.Contains(out, `spinwave_span_seconds_count{gate="xor",span="op"} 2`) {
		t.Errorf("spans split across series:\n%s", out)
	}
}

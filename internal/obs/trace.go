package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// ChromeTraceSink retains finished spans and renders them in the Chrome
// trace-event format (the `{"traceEvents":[...]}` JSON loadable in
// chrome://tracing and Perfetto) — the exporter behind `swsim
// -trace-out trace.json`. Unlike HistogramSink it keeps every span
// label, including the per-run "run" label, so a trace shows which
// evaluation each setup/transient/lockin span belonged to.
//
// Spans are capped at MaxSpans (default 65536); spans finished beyond
// the cap are counted in Dropped instead of growing without bound.
type ChromeTraceSink struct {
	// MaxSpans bounds retention; 0 means the default 65536.
	MaxSpans int

	mu      sync.Mutex
	spans   []FinishedSpan
	rows    map[string]int // span name → tid, by first appearance
	order   []string
	dropped int64
}

// Finish implements SpanSink.
func (c *ChromeTraceSink) Finish(name string, start time.Time, d time.Duration, labels []Label) {
	max := c.MaxSpans
	if max <= 0 {
		max = 65536
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.spans) >= max {
		c.dropped++
		return
	}
	if c.rows == nil {
		c.rows = make(map[string]int)
	}
	if _, ok := c.rows[name]; !ok {
		c.rows[name] = len(c.order) + 1
		c.order = append(c.order, name)
	}
	c.spans = append(c.spans, FinishedSpan{Name: name, Start: start, Duration: d, Labels: labels})
}

// Len returns the number of retained spans.
func (c *ChromeTraceSink) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

// Dropped returns the number of spans discarded at the retention cap.
func (c *ChromeTraceSink) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// TraceEvent is one Chrome trace event: a "complete" span (Ph "X",
// with Dur) or an instant marker (Ph "i", with S scope). Timestamps
// are microseconds relative to the trace epoch. Exported so the fleet
// observability plane (internal/obsplane) renders its merged
// multi-node timelines in the identical format this sink writes.
type TraceEvent struct {
	// Name labels the event in the timeline.
	Name string `json:"name"`
	// Ph is the Chrome phase: "X" complete, "i" instant, "M" metadata.
	Ph string `json:"ph"`
	// Ts is the start timestamp in µs relative to the trace epoch.
	Ts float64 `json:"ts"`
	// Dur is the span duration in µs (complete events only).
	Dur float64 `json:"dur,omitempty"`
	// Pid and Tid place the event on a process/thread row.
	Pid int `json:"pid"`
	Tid int `json:"tid"`
	// S is the instant-event scope ("t" thread, "p" process, "g" global).
	S string `json:"s,omitempty"`
	// Args carries the event's key/value payload.
	Args map[string]string `json:"args,omitempty"`
}

// ThreadName is the Chrome metadata event labeling a tid row.
type ThreadName struct {
	// Name is always "thread_name" (the Chrome metadata event name).
	Name string `json:"name"`
	// Ph is always "M".
	Ph string `json:"ph"`
	// Pid and Tid identify the row being labeled.
	Pid int `json:"pid"`
	Tid int `json:"tid"`
	// Args carries the row's display name under the "name" key.
	Args map[string]string `json:"args"`
}

// NewThreadName builds the metadata event naming a tid row.
func NewThreadName(tid int, name string) ThreadName {
	return ThreadName{Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
		Args: map[string]string{"name": name}}
}

// Export renders the retained spans as a Chrome trace JSON document.
// Timestamps are microseconds relative to the earliest retained span,
// each span name gets its own row (tid), and span labels become event
// args.
func (c *ChromeTraceSink) Export(w io.Writer) error {
	c.mu.Lock()
	spans := make([]FinishedSpan, len(c.spans))
	copy(spans, c.spans)
	rows := make(map[string]int, len(c.rows))
	for k, v := range c.rows {
		rows[k] = v
	}
	order := append([]string(nil), c.order...)
	c.mu.Unlock()

	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}
	events := make([]any, 0, len(spans)+len(order))
	for _, name := range order {
		events = append(events, NewThreadName(rows[name], name))
	}
	for _, s := range spans {
		ev := TraceEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Sub(epoch).Nanoseconds()) / 1e3,
			Dur:  float64(s.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  rows[s.Name],
		}
		if len(s.Labels) > 0 {
			ev.Args = make(map[string]string, len(s.Labels))
			for _, l := range s.Labels {
				ev.Args[l.Key] = l.Value
			}
		}
		events = append(events, ev)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}

// TeeSink delivers every finished span to all of its sinks — used when
// a CLI wants both histogram metrics (-stats) and a Chrome trace
// (-trace-out) from the same run.
type TeeSink []SpanSink

// Finish implements SpanSink.
func (t TeeSink) Finish(name string, start time.Time, d time.Duration, labels []Label) {
	for _, s := range t {
		if s != nil {
			s.Finish(name, start, d, labels)
		}
	}
}

package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanSink receives finished spans. Implementations must be safe for
// concurrent use; Finish is called on the hot path, so sinks should be
// cheap (record and return).
type SpanSink interface {
	Finish(name string, start time.Time, d time.Duration, labels []Label)
}

// spanSink holds the installed sink. Spans are disabled (zero-cost —
// not even a clock read) while it is nil.
var spanSink atomic.Pointer[SpanSink]

// SetSpanSink installs sink as the destination for finished spans; nil
// disables tracing. It returns the previously installed sink so tests
// can restore it.
func SetSpanSink(sink SpanSink) SpanSink {
	var prev *SpanSink
	if sink == nil {
		prev = spanSink.Swap(nil)
	} else {
		prev = spanSink.Swap(&sink)
	}
	if prev == nil {
		return nil
	}
	return *prev
}

// Span is one timed operation. The zero Span is inert; obtain active
// spans from StartSpan. Span is a value type so starting one allocates
// nothing when labels are passed inline.
type Span struct {
	name   string
	start  time.Time
	labels []Label
	active bool
}

// StartSpan begins a span. When no sink is installed the returned span
// is inert and End is a no-op, so instrumented code can call
// StartSpan/End unconditionally.
func StartSpan(name string, labels ...Label) Span {
	if spanSink.Load() == nil {
		return Span{}
	}
	return Span{name: name, start: time.Now(), labels: labels, active: true}
}

// End finishes the span and delivers it to the sink installed at End
// time (spans started before a sink swap still report).
func (s Span) End() {
	if !s.active {
		return
	}
	if p := spanSink.Load(); p != nil {
		(*p).Finish(s.name, s.start, time.Since(s.start), s.labels)
	}
}

// HistogramSink records span durations into per-name histograms of a
// registry — the cheapest useful sink: installed by swserve and the
// -stats CLIs so span timings show up in /metrics and Snapshot.
type HistogramSink struct {
	Registry *Registry
	// Buckets overrides DefBuckets for the span histograms.
	Buckets []float64
}

// Finish implements SpanSink. The per-run "run" label (one fresh value
// per evaluation) is dropped before recording: folding it into the
// histogram key would mint a new metric series per run — unbounded
// cardinality. Run-resolved span timelines belong to ChromeTraceSink
// and the journal, which keep the label.
func (h *HistogramSink) Finish(name string, _ time.Time, d time.Duration, labels []Label) {
	kept := make([]Label, 0, len(labels)+1)
	for _, l := range labels {
		if l.Key == "run" {
			continue
		}
		kept = append(kept, l)
	}
	kept = append(kept, L("span", name))
	h.Registry.Histogram("spinwave_span_seconds", h.Buckets, kept...).Observe(d.Seconds())
}

// CollectingSink retains finished spans in memory — for tests and
// ad-hoc debugging, not production.
type CollectingSink struct {
	mu    sync.Mutex
	spans []FinishedSpan
}

// FinishedSpan is one retained span record.
type FinishedSpan struct {
	Name     string
	Start    time.Time
	Duration time.Duration
	Labels   []Label
}

// Finish implements SpanSink.
func (c *CollectingSink) Finish(name string, start time.Time, d time.Duration, labels []Label) {
	c.mu.Lock()
	c.spans = append(c.spans, FinishedSpan{Name: name, Start: start, Duration: d, Labels: labels})
	c.mu.Unlock()
}

// Spans returns a copy of the retained spans.
func (c *CollectingSink) Spans() []FinishedSpan {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]FinishedSpan, len(c.spans))
	copy(out, c.spans)
	return out
}

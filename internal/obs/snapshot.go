package obs

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// Snapshot is a point-in-time copy of every registered metric, keyed by
// the series name including its rendered labels (e.g.
// `swserve_http_request_seconds{path="/v1/eval",status="200"}`).
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// HistogramSnapshot is one histogram's state: per-bucket (non-
// cumulative) counts aligned with Bounds, plus the implicit +Inf
// overflow bucket as the final Counts entry.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// Mean returns the average observed value, or 0 with no observations.
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an upper-bound estimate of the q-quantile (0..1)
// from the bucket boundaries: the smallest bound whose cumulative count
// covers q. Observations beyond the last bound report +Inf as the
// largest finite bound.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	if target < 1 {
		target = 1
	}
	cum := int64(0)
	for i, c := range h.Counts {
		cum += c
		if cum >= target {
			if i < len(h.Bounds) {
				return h.Bounds[i]
			}
			return h.Bounds[len(h.Bounds)-1]
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Snapshot copies every registered series. Each individual value is
// read atomically; the snapshot as a whole is a consistent read when no
// writers are active (e.g. after a run completes, for -stats printing).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for _, m := range r.snapshotSeries() {
		key := seriesKey(m.family, m.labels)
		switch {
		case m.c != nil:
			s.Counters[key] = m.c.Value()
		case m.h != nil:
			hs := HistogramSnapshot{
				Bounds: append([]float64(nil), m.h.bounds...),
				Counts: make([]int64, len(m.h.counts)),
				Sum:    m.h.Sum(),
				Count:  m.h.Count(),
			}
			for i := range m.h.counts {
				hs.Counts[i] = m.h.counts[i].Load()
			}
			s.Histograms[key] = hs
		default:
			s.Gauges[key] = m.g.Value()
		}
	}
	return s
}

// Summary renders the snapshot as an aligned text table: counters and
// gauges one per line, histograms with count/mean/p50/p99. The zero-
// valued series are skipped so `-stats` output stays focused on what
// actually ran.
func (s Snapshot) Summary() string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	section := func(title string) { fmt.Fprintf(tw, "%s\n", title) }

	keys := make([]string, 0, len(s.Counters))
	for k, v := range s.Counters {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) > 0 {
		sort.Strings(keys)
		section("counters:")
		for _, k := range keys {
			fmt.Fprintf(tw, "  %s\t%d\n", k, s.Counters[k])
		}
	}

	keys = keys[:0]
	for k, v := range s.Gauges {
		if v != 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) > 0 {
		sort.Strings(keys)
		section("gauges:")
		for _, k := range keys {
			fmt.Fprintf(tw, "  %s\t%g\n", k, s.Gauges[k])
		}
	}

	keys = keys[:0]
	for k, h := range s.Histograms {
		if h.Count != 0 {
			keys = append(keys, k)
		}
	}
	if len(keys) > 0 {
		sort.Strings(keys)
		section("histograms:")
		for _, k := range keys {
			h := s.Histograms[k]
			fmt.Fprintf(tw, "  %s\tcount %d\tmean %s\tp50 ≤%s\tp99 ≤%s\n",
				k, h.Count, fdur(h.Mean()), fdur(h.Quantile(0.5)), fdur(h.Quantile(0.99)))
		}
	}
	tw.Flush()
	return b.String()
}

// fdur renders a duration in seconds human-readably.
func fdur(sec float64) string {
	d := time.Duration(sec * float64(time.Second))
	switch {
	case d == 0:
		return "0"
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(100 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// Package obs is the repo's dependency-free observability layer: a
// metrics registry (atomic counters, gauges, fixed-bucket latency
// histograms) with Prometheus-style text exposition, a consistent
// Snapshot API for in-process reporting (`swtables -stats`,
// `swsim -stats`), and lightweight span tracing with a pluggable sink.
//
// Everything is safe for concurrent use and built only on the standard
// library. Hot paths pay one or two atomic operations per event; spans
// cost nothing when no sink is installed.
//
// Metric names follow the Prometheus conventions: snake_case families,
// a `_total` suffix on counters, base units (seconds) on histograms,
// and constant labels attached at registration
// (`reg.Counter("x_total", obs.L("result", "ok"))`). The full name
// inventory lives in DESIGN.md §9.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant key/value pair attached to a metric at
// registration time.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefBuckets are the default latency histogram bucket upper bounds in
// seconds: microseconds for behavioral evals and HTTP overhead through
// minutes for paper-scale micromagnetic transients.
var DefBuckets = []float64{
	100e-6, 1e-3, 5e-3, 25e-3, 100e-3, 250e-3, 1, 2.5, 10, 30, 60, 300,
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored — counters are
// monotone by contract).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 value that can go up and down. An optional
// callback (see Registry.GaugeFunc) can supply the value at read time
// instead.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64 // non-nil for GaugeFunc-registered gauges
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta to the gauge (atomic compare-and-swap loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current gauge value (calling the callback for
// function gauges).
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram of float64 observations
// (typically latencies in seconds). Bucket counts are cumulative on
// export, per-bucket internally; all fields are atomics, so concurrent
// Observe calls never block each other.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; an implicit +Inf bucket follows
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// metric is one registered series.
type metric struct {
	family string // name without labels
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

func (m *metric) kind() string {
	switch {
	case m.c != nil:
		return "counter"
	case m.h != nil:
		return "histogram"
	default:
		return "gauge"
	}
}

// Registry holds named metrics. Get-or-create accessors make it safe
// for independent subsystems to share one series: the first caller
// registers, later callers receive the same instance. A name
// registered as one kind cannot be re-registered as another (panics —
// a programming error, like a duplicate expvar name).
type Registry struct {
	mu      sync.RWMutex
	series  map[string]*metric // key: family + rendered labels
	order   []string           // registration order of keys
	help    map[string]string  // family -> HELP text
	helpSet []string           // registration order of described families
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{series: make(map[string]*metric), help: make(map[string]string)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry used by the instrumented
// packages (engine, llg, sweep, parallel, swserve).
func Default() *Registry { return defaultRegistry }

// seriesKey renders the canonical key for a family + label set.
func seriesKey(family string, labels []Label) string {
	if len(labels) == 0 {
		return family
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteString(family)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the series for key, or registers one built by mk.
func (r *Registry) lookup(family string, labels []Label, want string, mk func() *metric) *metric {
	key := seriesKey(family, labels)
	r.mu.RLock()
	m, ok := r.series[key]
	r.mu.RUnlock()
	if !ok {
		r.mu.Lock()
		if m, ok = r.series[key]; !ok {
			m = mk()
			r.series[key] = m
			r.order = append(r.order, key)
		}
		r.mu.Unlock()
	}
	if m.kind() != want {
		panic(fmt.Sprintf("obs: %s already registered as a %s, requested as %s", key, m.kind(), want))
	}
	return m
}

// Counter returns the counter named family with the given constant
// labels, registering it on first use.
func (r *Registry) Counter(family string, labels ...Label) *Counter {
	return r.lookup(family, labels, "counter", func() *metric {
		return &metric{family: family, labels: labels, c: &Counter{}}
	}).c
}

// Gauge returns the gauge named family with the given constant labels,
// registering it on first use.
func (r *Registry) Gauge(family string, labels ...Label) *Gauge {
	return r.lookup(family, labels, "gauge", func() *metric {
		return &metric{family: family, labels: labels, g: &Gauge{}}
	}).g
}

// GaugeFunc registers a gauge whose value is computed by fn at read
// time (e.g. current cache entries). Re-registering the same name
// replaces the callback.
func (r *Registry) GaugeFunc(family string, fn func() float64, labels ...Label) {
	m := r.lookup(family, labels, "gauge", func() *metric {
		return &metric{family: family, labels: labels, g: &Gauge{}}
	})
	r.mu.Lock()
	m.g.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram named family with the given bucket
// upper bounds (nil = DefBuckets) and constant labels, registering it
// on first use. Buckets are fixed at first registration.
func (r *Registry) Histogram(family string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.lookup(family, labels, "histogram", func() *metric {
		return &metric{family: family, labels: labels, h: newHistogram(buckets)}
	}).h
}

// Unregister removes one series (family + exact label set) from the
// registry so it disappears from the exposition. It exists for series
// keyed by a dynamic label — per-node fleet gauges, for example — whose
// subject can go away for good; without removal a dead node's last
// values would be scraped forever. Returns whether the series existed.
// A later lookup with the same family and labels re-registers a fresh
// series (holders of the old handle keep a detached, unexported value).
func (r *Registry) Unregister(family string, labels ...Label) bool {
	key := seriesKey(family, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.series[key]; !ok {
		return false
	}
	delete(r.series, key)
	for i, k := range r.order {
		if k == key {
			r.order = append(r.order[:i:i], r.order[i+1:]...)
			break
		}
	}
	return true
}

// Describe attaches HELP text to a metric family for the Prometheus
// exposition.
func (r *Registry) Describe(family, help string) {
	r.mu.Lock()
	if _, ok := r.help[family]; !ok {
		r.helpSet = append(r.helpSet, family)
	}
	r.help[family] = help
	r.mu.Unlock()
}

// snapshotSeries returns a stable copy of the registered series in
// registration order.
func (r *Registry) snapshotSeries() []*metric {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*metric, 0, len(r.order))
	for _, k := range r.order {
		out = append(out, r.series[k])
	}
	return out
}

// labelString renders {k="v",...} for exposition, with extra appended
// (used for the le bucket label); empty when there are no labels.
func labelString(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	all = append(all, extra...) // le stays last, as Prometheus renders it
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus writes every registered series in the Prometheus
// text exposition format (version 0.0.4), grouped by family with TYPE
// and (when described) HELP headers.
func (r *Registry) WritePrometheus(w io.Writer) error {
	series := r.snapshotSeries()
	r.mu.RLock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.RUnlock()

	typed := map[string]bool{}
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, m := range series {
		if !typed[m.family] {
			typed[m.family] = true
			if h, ok := help[m.family]; ok {
				p("# HELP %s %s\n", m.family, strings.ReplaceAll(h, "\n", " "))
			}
			p("# TYPE %s %s\n", m.family, m.kind())
		}
		switch {
		case m.c != nil:
			p("%s%s %d\n", m.family, labelString(m.labels), m.c.Value())
		case m.h != nil:
			cum := int64(0)
			for i, bound := range m.h.bounds {
				cum += m.h.counts[i].Load()
				p("%s_bucket%s %d\n", m.family, labelString(m.labels, L("le", formatBound(bound))), cum)
			}
			cum += m.h.counts[len(m.h.bounds)].Load()
			p("%s_bucket%s %d\n", m.family, labelString(m.labels, L("le", "+Inf")), cum)
			p("%s_sum%s %g\n", m.family, labelString(m.labels), m.h.Sum())
			p("%s_count%s %d\n", m.family, labelString(m.labels), m.h.Count())
		default:
			p("%s%s %g\n", m.family, labelString(m.labels), m.g.Value())
		}
	}
	return err
}

func formatBound(b float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", b), "0"), ".")
}

package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if r.Counter("requests_total") != c {
		t.Error("get-or-create returned a different counter")
	}

	g := r.Gauge("in_flight")
	g.Set(2)
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %g, want 4", got)
	}

	r.GaugeFunc("cache_entries", func() float64 { return 42 })
	if got := r.Gauge("cache_entries").Value(); got != 42 {
		t.Errorf("gauge func = %g, want 42", got)
	}
}

func TestCounterLabelsAreSeparateSeries(t *testing.T) {
	r := NewRegistry()
	ok := r.Counter("evals_total", L("result", "ok"))
	errs := r.Counter("evals_total", L("result", "error"))
	if ok == errs {
		t.Fatal("labelled series collided")
	}
	ok.Add(3)
	errs.Inc()
	s := r.Snapshot()
	if s.Counters[`evals_total{result="ok"}`] != 3 || s.Counters[`evals_total{result="error"}`] != 1 {
		t.Errorf("snapshot = %+v", s.Counters)
	}
	// Label order must not matter for identity.
	a := r.Counter("http_total", L("path", "/v1/eval"), L("status", "200"))
	b := r.Counter("http_total", L("status", "200"), L("path", "/v1/eval"))
	if a != b {
		t.Error("label order changed series identity")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total")
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d", h.Count())
	}
	if got := h.Sum(); got < 5.5 || got > 5.6 {
		t.Errorf("sum = %g", got)
	}
	hs := r.Snapshot().Histograms["lat_seconds"]
	wantCounts := []int64{2, 1, 1, 1} // per-bucket + overflow
	for i, w := range wantCounts {
		if hs.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, hs.Counts[i], w)
		}
	}
	if q := hs.Quantile(0.5); q != 0.01 {
		t.Errorf("p50 = %g, want 0.01 (bucket bound)", q)
	}
	if q := hs.Quantile(0.99); q != 1 {
		t.Errorf("p99 = %g, want 1 (largest finite bound)", q)
	}
	if m := hs.Mean(); m < 1.1 || m > 1.2 {
		t.Errorf("mean = %g", m)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Describe("evals_total", "evaluations run")
	r.Counter("evals_total", L("result", "ok")).Add(7)
	r.Gauge("in_flight").Set(2)
	h := r.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(50)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP evals_total evaluations run",
		"# TYPE evals_total counter",
		`evals_total{result="ok"} 7`,
		"# TYPE in_flight gauge",
		"in_flight 2",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 2`,
		`lat_seconds_bucket{le="+Inf"} 3`,
		"lat_seconds_sum 50.55",
		"lat_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSpanDisabledByDefault(t *testing.T) {
	prev := SetSpanSink(nil)
	defer SetSpanSink(prev)
	s := StartSpan("noop")
	if s.active {
		t.Error("span active with no sink installed")
	}
	s.End() // must not panic
}

func TestSpanCollectingSink(t *testing.T) {
	sink := &CollectingSink{}
	prev := SetSpanSink(sink)
	defer SetSpanSink(prev)
	s := StartSpan("work", L("gate", "xor"))
	time.Sleep(time.Millisecond)
	s.End()
	spans := sink.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Name != "work" || spans[0].Duration <= 0 {
		t.Errorf("span = %+v", spans[0])
	}
	if len(spans[0].Labels) != 1 || spans[0].Labels[0] != L("gate", "xor") {
		t.Errorf("labels = %+v", spans[0].Labels)
	}
}

func TestSpanHistogramSink(t *testing.T) {
	r := NewRegistry()
	prev := SetSpanSink(&HistogramSink{Registry: r})
	defer SetSpanSink(prev)
	StartSpan("solve", L("gate", "maj3")).End()
	StartSpan("solve", L("gate", "maj3")).End()
	s := r.Snapshot()
	key := `spinwave_span_seconds{gate="maj3",span="solve"}`
	if s.Histograms[key].Count != 2 {
		t.Errorf("span histogram = %+v", s.Histograms)
	}
}

func TestSummaryOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Gauge("zero_gauge").Set(0) // skipped: zero-valued
	r.Histogram("h_seconds", []float64{1}).Observe(0.5)
	out := r.Snapshot().Summary()
	for _, want := range []string{"counters:", "a_total", "3", "histograms:", "h_seconds", "count 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "zero_gauge") {
		t.Errorf("summary includes zero-valued series:\n%s", out)
	}
}

func TestUnregister(t *testing.T) {
	r := NewRegistry()
	r.Gauge("node_stat", L("node", "w1"), L("stat", "evals")).Set(3)
	r.Gauge("node_stat", L("node", "w2"), L("stat", "evals")).Set(5)

	// Label order must not matter — the key is canonical.
	if !r.Unregister("node_stat", L("stat", "evals"), L("node", "w1")) {
		t.Fatal("Unregister missed a registered series")
	}
	if r.Unregister("node_stat", L("node", "w1"), L("stat", "evals")) {
		t.Fatal("second Unregister reported success")
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Contains(out, `node="w1"`) {
		t.Fatalf("unregistered series still exposed:\n%s", out)
	}
	if !strings.Contains(out, `node_stat{node="w2",stat="evals"} 5`) {
		t.Fatalf("sibling series lost:\n%s", out)
	}

	// Re-registration after removal starts a fresh series.
	r.Gauge("node_stat", L("node", "w1"), L("stat", "evals")).Set(9)
	b.Reset()
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), `node_stat{node="w1",stat="evals"} 9`) {
		t.Fatal("series did not re-register after Unregister")
	}
}

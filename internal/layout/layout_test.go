package layout

import (
	"math"
	"testing"

	"spinwave/internal/grid"
	"spinwave/internal/units"
)

func TestPaperSpecDimensions(t *testing.T) {
	s := PaperSpec()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper §IV-A: d1=330 nm, d2=880 nm, d3=220 nm, d4=55 nm.
	if got := units.ToNM(s.D1()); math.Abs(got-330) > 1e-9 {
		t.Errorf("d1 = %g nm, want 330", got)
	}
	if got := units.ToNM(s.D2()); math.Abs(got-880) > 1e-9 {
		t.Errorf("d2 = %g nm, want 880", got)
	}
	if got := units.ToNM(s.D3()); math.Abs(got-220) > 1e-9 {
		t.Errorf("d3 = %g nm, want 220", got)
	}
	if got := units.ToNM(s.D4()); math.Abs(got-55) > 1e-9 {
		t.Errorf("d4 = %g nm, want 55", got)
	}
	if got := units.ToNM(s.XORStub); math.Abs(got-40) > 1e-9 {
		t.Errorf("XOR stub = %g nm, want 40", got)
	}
	if got := units.ToNM(s.Width); math.Abs(got-50) > 1e-9 {
		t.Errorf("width = %g nm, want 50", got)
	}
}

func TestSpecValidation(t *testing.T) {
	mod := func(f func(*Spec)) Spec {
		s := PaperSpec()
		f(&s)
		return s
	}
	bad := []Spec{
		mod(func(s *Spec) { s.Lambda = 0 }),
		mod(func(s *Spec) { s.Width = 0 }),
		mod(func(s *Spec) { s.Width = s.Lambda * 1.5 }), // w > λ violates §III-A
		mod(func(s *Spec) { s.D1N = 0 }),
		mod(func(s *Spec) { s.D3N = 20 }), // 0.75·d3 > d1
		mod(func(s *Spec) { s.XORStub = 0 }),
		mod(func(s *Spec) { s.Tail = -1 }),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
	if err := ReducedSpec().Validate(); err != nil {
		t.Errorf("ReducedSpec invalid: %v", err)
	}
}

func TestMAJ3PathsAreIntegerWavelengths(t *testing.T) {
	for _, spec := range []Spec{PaperSpec(), ReducedSpec()} {
		l, err := BuildMAJ3(spec, false)
		if err != nil {
			t.Fatal(err)
		}
		paths := [][]string{
			{"I1", "X", "X2", "Y1", "O1"},
			{"I2", "X", "X2", "Y1", "O1"},
			{"I1", "X", "X2", "Y2", "O2"},
			{"I2", "X", "X2", "Y2", "O2"},
			{"I3", "S", "Y1", "O1"},
			{"I3", "S", "Y2", "O2"},
		}
		for _, p := range paths {
			n, err := l.PathLengthInLambda(p...)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(n-math.Round(n)) > 1e-9 {
				t.Errorf("%v: path %v = %.6f λ, not integer", spec.D1N, p, n)
			}
		}
		// FO2 symmetry: paths to O1 and O2 have identical lengths.
		a, _ := l.PathLengthInLambda("I1", "X", "X2", "Y1", "O1")
		b, _ := l.PathLengthInLambda("I1", "X", "X2", "Y2", "O2")
		if math.Abs(a-b) > 1e-9 {
			t.Errorf("asymmetric output paths: %g vs %g λ", a, b)
		}
	}
}

func TestMAJ3PaperPathLengths(t *testing.T) {
	l, err := BuildMAJ3(PaperSpec(), false)
	if err != nil {
		t.Fatal(err)
	}
	// I1→O1 = d1+body+d1+d4 = 15λ; I3→O1 = d2+d3+d4 = 21λ.
	if n, _ := l.PathLengthInLambda("I1", "X", "X2", "Y1", "O1"); math.Abs(n-15) > 1e-9 {
		t.Errorf("I1→O1 = %gλ, want 15", n)
	}
	if n, _ := l.PathLengthInLambda("I3", "S", "Y1", "O1"); math.Abs(n-21) > 1e-9 {
		t.Errorf("I3→O1 = %gλ, want 21", n)
	}
}

func TestMAJ3Structure(t *testing.T) {
	l, err := BuildMAJ3(PaperSpec(), false)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l.Inputs()); got != 3 {
		t.Errorf("inputs = %d, want 3", got)
	}
	if got := len(l.Outputs()); got != 2 {
		t.Errorf("outputs = %d, want 2", got)
	}
	if got := len(l.Terminations()); got != 2 {
		t.Errorf("terminations = %d, want 2", got)
	}
	// Mirror symmetry about the horizontal axis through X.
	xIdx, _ := l.NodeByName("X")
	axis := l.Nodes[xIdx].Pos.Y
	pairs := [][2]string{{"I1", "I2"}, {"Y1", "Y2"}, {"O1", "O2"}, {"T1", "T2"}}
	for _, p := range pairs {
		a, _ := l.NodeByName(p[0])
		b, _ := l.NodeByName(p[1])
		pa, pb := l.Nodes[a].Pos, l.Nodes[b].Pos
		if math.Abs(pa.X-pb.X) > 1e-12 {
			t.Errorf("%s/%s x mismatch: %v vs %v", p[0], p[1], pa, pb)
		}
		if math.Abs((pa.Y-axis)+(pb.Y-axis)) > 1e-12 {
			t.Errorf("%s/%s not mirrored about axis", p[0], p[1])
		}
	}
}

func TestMAJ3SingleOutput(t *testing.T) {
	l, err := BuildMAJ3(PaperSpec(), true)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l.Outputs()); got != 1 {
		t.Errorf("single-output variant has %d outputs", got)
	}
	if _, err := l.NodeByName("Y2"); err == nil {
		t.Error("single-output variant still has Y2")
	}
}

func TestXORStructure(t *testing.T) {
	l, err := BuildXOR(PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(l.Inputs()); got != 2 {
		t.Errorf("inputs = %d, want 2", got)
	}
	if got := len(l.Outputs()); got != 2 {
		t.Errorf("outputs = %d, want 2", got)
	}
	if _, err := l.NodeByName("I3"); err == nil {
		t.Error("XOR still has I3 (paper removes the third input)")
	}
	// Equal-length interfering arms.
	a, _ := l.PathLengthInLambda("I1", "X")
	b, _ := l.PathLengthInLambda("I2", "X")
	if math.Abs(a-b) > 1e-9 || math.Abs(a-float64(PaperSpec().D1N)) > 1e-9 {
		t.Errorf("input arms %g/%g λ", a, b)
	}
}

func TestBuildStraight(t *testing.T) {
	s := PaperSpec()
	l, err := BuildStraight(s, units.NM(550), units.NM(330))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := l.PathLengthInLambda("I1", "O1"); math.Abs(n-6) > 1e-9 {
		t.Errorf("I1→O1 = %gλ, want 6", n)
	}
	if _, err := BuildStraight(s, units.NM(100), units.NM(200)); err == nil {
		t.Error("detector beyond length accepted")
	}
	if _, err := BuildStraight(s, 0, 0); err == nil {
		t.Error("zero length accepted")
	}
}

func TestBuildRejectsInvalidSpec(t *testing.T) {
	s := PaperSpec()
	s.Lambda = 0
	if _, err := BuildMAJ3(s, false); err == nil {
		t.Error("BuildMAJ3 accepted invalid spec")
	}
	if _, err := BuildXOR(s); err == nil {
		t.Error("BuildXOR accepted invalid spec")
	}
}

func TestLayoutPositiveAndMeshable(t *testing.T) {
	for _, build := range []func() (*Layout, error){
		func() (*Layout, error) { return BuildMAJ3(PaperSpec(), false) },
		func() (*Layout, error) { return BuildMAJ3(ReducedSpec(), false) },
		func() (*Layout, error) { return BuildXOR(ReducedSpec()) },
	} {
		l, err := build()
		if err != nil {
			t.Fatal(err)
		}
		b := l.Bounds()
		if b.Min.X < 0 || b.Min.Y < 0 {
			t.Errorf("%s: bounds extend negative: %+v", l.Name, b)
		}
		mesh, err := l.Mesh(5e-9, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if mesh.SizeX() < b.Max.X || mesh.SizeY() < b.Max.Y {
			t.Errorf("%s: mesh %v smaller than layout bounds %+v", l.Name, mesh, b)
		}
		reg := l.Rasterize(mesh)
		if reg.Count() == 0 {
			t.Errorf("%s: rasterized to zero cells", l.Name)
		}
		// Every node position must land on a material cell.
		for _, n := range l.Nodes {
			i, j, ok := mesh.CellAt(n.Pos.X, n.Pos.Y)
			if !ok || !reg[mesh.Idx(i, j)] {
				t.Errorf("%s: node %s at %v not on material", l.Name, n.Name, n.Pos)
			}
		}
	}
}

func TestRasterizedRegionIsConnected(t *testing.T) {
	// The whole gate must be one connected piece of material, otherwise
	// waves cannot travel between inputs and outputs.
	l, err := BuildMAJ3(ReducedSpec(), false)
	if err != nil {
		t.Fatal(err)
	}
	mesh, err := l.Mesh(5e-9, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	reg := l.Rasterize(mesh)
	// BFS from the first set cell.
	start := -1
	for i, b := range reg {
		if b {
			start = i
			break
		}
	}
	visited := make([]bool, len(reg))
	queue := []int{start}
	visited[start] = true
	count := 1
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		i, j := mesh.Coord(c)
		for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			ni, nj := i+d[0], j+d[1]
			if ni < 0 || ni >= mesh.Nx || nj < 0 || nj >= mesh.Ny {
				continue
			}
			n := mesh.Idx(ni, nj)
			if reg[n] && !visited[n] {
				visited[n] = true
				count++
				queue = append(queue, n)
			}
		}
	}
	if count != reg.Count() {
		t.Errorf("region disconnected: reached %d of %d cells", count, reg.Count())
	}
}

func TestNodeByNameAndPathErrors(t *testing.T) {
	l, _ := BuildXOR(PaperSpec())
	if _, err := l.NodeByName("nope"); err == nil {
		t.Error("unknown node accepted")
	}
	if _, err := l.PathLengthInLambda("I1"); err == nil {
		t.Error("single-node path accepted")
	}
	if _, err := l.PathLengthInLambda("I1", "O2"); err == nil {
		t.Error("non-adjacent path accepted")
	}
	if _, err := l.PathLengthInLambda("I1", "missing"); err == nil {
		t.Error("unknown node in path accepted")
	}
}

func TestNodeKindString(t *testing.T) {
	names := map[NodeKind]string{Input: "input", Output: "output", Junction: "junction", Termination: "termination"}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%d.String() = %s", k, k.String())
		}
	}
	if NodeKind(42).String() == "" {
		t.Error("unknown kind empty")
	}
}

func TestLayoutString(t *testing.T) {
	l, _ := BuildMAJ3(PaperSpec(), false)
	if s := l.String(); len(s) == 0 {
		t.Error("empty String()")
	}
	_ = grid.Mesh{}
}

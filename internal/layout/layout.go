// Package layout builds the gate geometries of the paper: the triangle
// shape fan-out-of-2 Majority gate (Figure 3), the triangle XOR gate
// (Figure 4), a straight reference waveguide, and the supporting graph
// structure consumed by both evaluation backends.
//
// A layout is both a geometric object (waveguide centerlines that can be
// rasterized onto a mesh) and a signal-flow graph (nodes and directed
// edges with path lengths) consumed by the behavioral phasor backend.
//
// # Reconstructed triangle geometry
//
// The paper specifies the dimension set {d1, d2, d3, d4} and the design
// rules that all interfering path lengths be integer multiples of the
// wavelength λ and the structure be mirror-symmetric (see DESIGN.md §5).
// The reconstruction used here follows the paper's two-stage interference
// description (§III-A, steps (ii)–(iii)):
//
//   - Input arms I1→X and I2→X of length d1 at a shallow half-angle
//     (Spec.MergeDeg) meet adiabatically at the first crossing point X.
//   - A short straight body X→X2 (length = BodyN·λ) carries the combined
//     wave. The body is the mode filter: for a single-mode waveguide the
//     antisymmetric (destructive) combination cannot propagate through
//     it, which is what makes the interference pattern clean — the
//     paper's "width ≤ λ" rule serves the same purpose.
//   - Fan-out arms X2→Y1 and X2→Y2 of length d1 each, elevated so that
//     the half-separation of Y1/Y2 equals HalfFrac·d3.
//   - I3 feed: a horizontal trunk I3→S of length d2 on the symmetry
//     axis (approaching from the right), splitting at S into the two
//     arms S→Y1 and S→Y2 of length d3 — the second crossing points,
//     where the I1⊕I2 wave interferes with I3's.
//   - Output stubs Y1→O1 and Y2→O2 of length d4 continue straight along
//     the fan-arm directions, followed by absorbing tails that emulate
//     the matched continuation into a next gate stage (assumption (v)).
//
// With the paper's dimensions (d1,d2,d3,d4) = (6,16,4,1)·λ and a 2λ body,
// every interfering path is an integer number of wavelengths:
// I1→O1 = I2→O1 = 15λ and I3→O1 = 21λ.
package layout

import (
	"fmt"
	"math"

	"spinwave/internal/geom"
	"spinwave/internal/grid"
	"spinwave/internal/units"
)

// NodeKind classifies layout graph nodes.
type NodeKind int

const (
	// Input marks a transducer node that excites spin waves.
	Input NodeKind = iota
	// Output marks a detection node.
	Output
	// Junction marks an interference/splitting point.
	Junction
	// Termination marks an absorbing waveguide end (matched load).
	Termination
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case Input:
		return "input"
	case Output:
		return "output"
	case Junction:
		return "junction"
	case Termination:
		return "termination"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// Node is a named point of the layout graph.
type Node struct {
	Name string
	Kind NodeKind
	Pos  geom.Point
}

// Edge is a waveguide arm between two nodes. Direction follows signal
// flow (From closer to the inputs).
type Edge struct {
	From, To int     // node indices
	Length   float64 // centerline length in meters
}

// Layout is a complete gate geometry plus its signal-flow graph.
type Layout struct {
	Name   string
	Lambda float64 // design wavelength, m
	Width  float64 // waveguide width, m
	Nodes  []Node
	Edges  []Edge
}

// Spec parameterizes the triangle gates. All dN are integer multiples of
// the wavelength, matching the paper's design rule (§III-A).
type Spec struct {
	Lambda float64 // spin-wave wavelength λ, m
	Width  float64 // waveguide width (≤ λ per §III-A), m

	D1N   int // input and fan-out arm length d1, in λ
	D2N   int // I3 trunk length d2, in λ
	D3N   int // I3 split arm length d3, in λ
	D4N   int // output stub length d4, in λ (Majority gate)
	BodyN int // straight body between merge and split, in λ

	// MergeDeg is the half-angle (degrees) of the I1/I2 input arms with
	// respect to the body axis. Shallow angles give adiabatic, low-loss
	// merging; 45° reproduces a textbook Y-junction.
	MergeDeg float64
	// HalfFrac sets the Y1/Y2 half-separation as a fraction of d3
	// (0 < HalfFrac < 1); smaller values flatten both the fan-out arms
	// and the I3 split arms.
	HalfFrac float64

	XORStub float64 // XOR output stub length (not λ-constrained, paper: 40 nm)
	Tail    float64 // absorbing tail beyond each output, m
	Margin  float64 // vacuum margin around the device when meshed, m

	// OutputHalfWave lengthens the Majority output stubs to (D4N+½)·λ,
	// the paper's §III-A rule for an inverting output ("if the desired
	// output has to give logic inversion then d4 must be (n+1/2)λ").
	OutputHalfWave bool
}

// Validate checks the physical and geometric constraints.
func (s Spec) Validate() error {
	if s.Lambda <= 0 {
		return fmt.Errorf("layout: wavelength %g must be positive", s.Lambda)
	}
	if s.Width <= 0 {
		return fmt.Errorf("layout: width %g must be positive", s.Width)
	}
	if s.Width > s.Lambda {
		return fmt.Errorf("layout: width %g exceeds wavelength %g (paper §III-A requires w ≤ λ)", s.Width, s.Lambda)
	}
	if s.D1N < 1 || s.D2N < 1 || s.D3N < 1 || s.D4N < 1 || s.BodyN < 1 {
		return fmt.Errorf("layout: arm lengths (%d,%d,%d,%d,%d)λ must all be ≥ 1λ", s.D1N, s.D2N, s.D3N, s.D4N, s.BodyN)
	}
	if s.MergeDeg <= 0 || s.MergeDeg > 60 {
		return fmt.Errorf("layout: merge half-angle %g° must be in (0, 60]", s.MergeDeg)
	}
	if s.HalfFrac <= 0 || s.HalfFrac >= 1 {
		return fmt.Errorf("layout: HalfFrac %g must be in (0, 1)", s.HalfFrac)
	}
	// The fan-out arm elevation requires sin θ2 = HalfFrac·d3/d1 ≤ 1.
	if s.HalfFrac*float64(s.D3N) > float64(s.D1N) {
		return fmt.Errorf("layout: d3 = %dλ too long for d1 = %dλ (need HalfFrac·d3 ≤ d1)", s.D3N, s.D1N)
	}
	// The Y1/Y2 junctions must clear the axis trunk: half-separation > width.
	if s.HalfFrac*float64(s.D3N)*s.Lambda <= s.Width {
		return fmt.Errorf("layout: Y-rail separation %.3g too small for width %.3g", s.HalfFrac*float64(s.D3N)*s.Lambda, s.Width)
	}
	if s.XORStub <= 0 {
		return fmt.Errorf("layout: XOR stub %g must be positive", s.XORStub)
	}
	if s.Tail < 0 || s.Margin < 0 {
		return fmt.Errorf("layout: tail/margin must be non-negative")
	}
	return nil
}

// D1 returns the input/fan-out arm length in meters.
func (s Spec) D1() float64 { return float64(s.D1N) * s.Lambda }

// D2 returns the I3 trunk length in meters.
func (s Spec) D2() float64 { return float64(s.D2N) * s.Lambda }

// D3 returns the I3 split arm length in meters.
func (s Spec) D3() float64 { return float64(s.D3N) * s.Lambda }

// D4 returns the Majority output stub length in meters: D4N·λ, plus a
// half wavelength when OutputHalfWave selects the inverting output.
func (s Spec) D4() float64 {
	d := float64(s.D4N) * s.Lambda
	if s.OutputHalfWave {
		d += s.Lambda / 2
	}
	return d
}

// Body returns the merge-to-split body length in meters.
func (s Spec) Body() float64 { return float64(s.BodyN) * s.Lambda }

// SingleModeWidth returns the waveguide width 0.45·λ below the
// antisymmetric-mode cutoff λ/2 of the exchange-dominated dispersion used
// by the micromagnetic backend. The paper's 50 nm guide is effectively
// single-mode at its operating point thanks to the dipolar gap; our
// solver's local-demag dispersion lacks that gap, so micromagnetic runs
// use this width to preserve the single-mode property the gate logic
// relies on (see DESIGN.md §2).
func SingleModeWidth(lambda float64) float64 { return 0.45 * lambda }

// PaperSpec returns the dimensions of the paper's §IV-A setup:
// λ = 55 nm, w = 50 nm, d1 = 330 nm, d2 = 880 nm, d3 = 220 nm, d4 = 55 nm,
// XOR stub 40 nm, plus a 1λ interference body.
func PaperSpec() Spec {
	return Spec{
		Lambda:   units.NM(55),
		Width:    units.NM(50),
		D1N:      6,
		D2N:      16,
		D3N:      4,
		D4N:      1,
		BodyN:    2,
		MergeDeg: 25,
		HalfFrac: 0.6,
		XORStub:  units.NM(40),
		Tail:     units.NM(220),
		Margin:   units.NM(60),
	}
}

// PaperMicromagSpec is PaperSpec with the single-mode waveguide width for
// in-repo micromagnetic runs.
func PaperMicromagSpec() Spec {
	s := PaperSpec()
	s.Width = SingleModeWidth(s.Lambda)
	return s
}

// ReducedSpec returns a geometrically similar but smaller device
// (d1 = 3λ, d2 = 3λ, d3 = 2λ, d4 = 1λ) with single-mode width, used for
// CI-scale micromagnetic runs. All interfering path lengths remain
// integer multiples of λ, the property the gate logic depends on.
func ReducedSpec() Spec {
	s := PaperMicromagSpec()
	s.D1N, s.D2N, s.D3N, s.D4N = 3, 3, 2, 1
	s.Tail = units.NM(165)
	return s
}

// BuildMAJ3 constructs the fan-out-of-2 3-input Majority gate layout
// (paper Figure 3). When singleOutput is true the lower side is removed,
// giving the simplified single-output Majority gate mentioned in §III-A.
func BuildMAJ3(s Spec, singleOutput bool) (*Layout, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d1, d2, d3, d4 := s.D1(), s.D2(), s.D3(), s.D4()

	cosM := math.Cos(s.MergeDeg * math.Pi / 180)
	sinM := math.Sin(s.MergeDeg * math.Pi / 180)
	half := s.HalfFrac * d3 // vertical half-separation of Y1/Y2
	dxFan := math.Sqrt(d1*d1 - half*half)
	dxSplit := math.Sqrt(d3*d3 - half*half)
	// Unit vector of the upper fan arm; outputs continue along it so the
	// through-gate wave keeps a straight path (low-loss).
	fanU := geom.P(dxFan/d1, half/d1)

	x := geom.P(0, 0)
	x2 := geom.P(s.Body(), 0)
	i1 := geom.P(-d1*cosM, +d1*sinM)
	i2 := geom.P(-d1*cosM, -d1*sinM)
	y1 := geom.P(x2.X+dxFan, +half)
	y2 := geom.P(x2.X+dxFan, -half)
	sp := geom.P(y1.X+dxSplit, 0) // split point S on the axis, right of Y1/Y2
	i3 := geom.P(sp.X+d2, 0)
	o1 := y1.Add(fanU.Scale(d4))
	o2 := geom.MirrorY(o1, 0)
	t1 := o1.Add(fanU.Scale(s.Tail))
	t2 := geom.MirrorY(t1, 0)

	l := &Layout{Name: "triangle-maj3-fo2", Lambda: s.Lambda, Width: s.Width}
	nI1 := l.addNode("I1", Input, i1)
	nI2 := l.addNode("I2", Input, i2)
	nI3 := l.addNode("I3", Input, i3)
	nX := l.addNode("X", Junction, x)
	nX2 := l.addNode("X2", Junction, x2)
	nS := l.addNode("S", Junction, sp)
	nY1 := l.addNode("Y1", Junction, y1)
	nO1 := l.addNode("O1", Output, o1)
	nT1 := l.addNode("T1", Termination, t1)

	l.addEdge(nI1, nX, d1)
	l.addEdge(nI2, nX, d1)
	l.addEdge(nX, nX2, s.Body())
	l.addEdge(nX2, nY1, d1)
	l.addEdge(nI3, nS, d2)
	l.addEdge(nS, nY1, d3)
	l.addEdge(nY1, nO1, d4)
	l.addEdge(nO1, nT1, s.Tail)

	if !singleOutput {
		nY2 := l.addNode("Y2", Junction, y2)
		nO2 := l.addNode("O2", Output, o2)
		nT2 := l.addNode("T2", Termination, t2)
		l.addEdge(nX2, nY2, d1)
		l.addEdge(nS, nY2, d3)
		l.addEdge(nY2, nO2, d4)
		l.addEdge(nO2, nT2, s.Tail)
	} else {
		l.Name = "triangle-maj3-single"
	}
	l.shiftPositive(s.Margin)
	return l, nil
}

// BuildMAJ5 constructs a fan-in-of-5, fan-out-of-2 Majority gate: the
// §III-A extension "more inputs can be added below I2 or above I1 and
// I3". Two extra data inputs I4 (above I1) and I5 (below I2) join the
// first crossing point X through d1-long arms at twice the merge
// half-angle; I3 keeps its trunk route. All interfering paths remain
// integer multiples of λ.
func BuildMAJ5(s Spec) (*Layout, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if 2*s.MergeDeg > 60 {
		return nil, fmt.Errorf("layout: MAJ5 needs merge half-angle ≤ 30°, got %g", s.MergeDeg)
	}
	l, err := BuildMAJ3(s, false)
	if err != nil {
		return nil, err
	}
	l.Name = "triangle-maj5-fo2"
	d1 := s.D1()
	xIdx, err := l.NodeByName("X")
	if err != nil {
		return nil, err
	}
	x := l.Nodes[xIdx].Pos
	cos2 := math.Cos(2 * s.MergeDeg * math.Pi / 180)
	sin2 := math.Sin(2 * s.MergeDeg * math.Pi / 180)
	nI4 := l.addNode("I4", Input, geom.P(x.X-d1*cos2, x.Y+d1*sin2))
	nI5 := l.addNode("I5", Input, geom.P(x.X-d1*cos2, x.Y-d1*sin2))
	l.addEdge(nI4, xIdx, d1)
	l.addEdge(nI5, xIdx, d1)
	// The steeper arms may extend past the original bounding margin;
	// re-shift so everything stays positive.
	l.shiftPositive(s.Margin)
	return l, nil
}

// BuildXOR constructs the fan-out-of-2 2-input XOR gate layout (paper
// Figure 4): the Majority structure with the third input removed and
// short output stubs for strong threshold readout.
func BuildXOR(s Spec) (*Layout, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d1 := s.D1()
	cosM := math.Cos(s.MergeDeg * math.Pi / 180)
	sinM := math.Sin(s.MergeDeg * math.Pi / 180)
	half := s.HalfFrac * s.D3()
	dxFan := math.Sqrt(d1*d1 - half*half)
	fanU := geom.P(dxFan/d1, half/d1)

	x := geom.P(0, 0)
	x2 := geom.P(s.Body(), 0)
	i1 := geom.P(-d1*cosM, +d1*sinM)
	i2 := geom.P(-d1*cosM, -d1*sinM)
	y1 := geom.P(x2.X+dxFan, +half)
	y2 := geom.P(x2.X+dxFan, -half)
	o1 := y1.Add(fanU.Scale(s.XORStub))
	o2 := geom.MirrorY(o1, 0)
	t1 := o1.Add(fanU.Scale(s.Tail))
	t2 := geom.MirrorY(t1, 0)

	l := &Layout{Name: "triangle-xor-fo2", Lambda: s.Lambda, Width: s.Width}
	nI1 := l.addNode("I1", Input, i1)
	nI2 := l.addNode("I2", Input, i2)
	nX := l.addNode("X", Junction, x)
	nX2 := l.addNode("X2", Junction, x2)
	nY1 := l.addNode("Y1", Junction, y1)
	nY2 := l.addNode("Y2", Junction, y2)
	nO1 := l.addNode("O1", Output, o1)
	nO2 := l.addNode("O2", Output, o2)
	nT1 := l.addNode("T1", Termination, t1)
	nT2 := l.addNode("T2", Termination, t2)

	l.addEdge(nI1, nX, d1)
	l.addEdge(nI2, nX, d1)
	l.addEdge(nX, nX2, s.Body())
	l.addEdge(nX2, nY1, d1)
	l.addEdge(nX2, nY2, d1)
	l.addEdge(nY1, nO1, s.XORStub)
	l.addEdge(nY2, nO2, s.XORStub)
	l.addEdge(nO1, nT1, s.Tail)
	l.addEdge(nO2, nT2, s.Tail)
	l.shiftPositive(s.Margin)
	return l, nil
}

// BuildStraight constructs a straight reference waveguide of the given
// length with one input, one mid detector at detectorAt from the input,
// and an absorbing tail. It is used for calibration and the Figure 1/2
// demonstrations.
func BuildStraight(s Spec, length, detectorAt float64) (*Layout, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if length <= 0 || detectorAt <= 0 || detectorAt >= length {
		return nil, fmt.Errorf("layout: need 0 < detectorAt < length, got %g, %g", detectorAt, length)
	}
	l := &Layout{Name: "straight", Lambda: s.Lambda, Width: s.Width}
	nI := l.addNode("I1", Input, geom.P(0, 0))
	nO := l.addNode("O1", Output, geom.P(detectorAt, 0))
	nT := l.addNode("T1", Termination, geom.P(length+s.Tail, 0))
	l.addEdge(nI, nO, detectorAt)
	l.addEdge(nO, nT, length+s.Tail-detectorAt)
	l.shiftPositive(s.Margin)
	return l, nil
}

func (l *Layout) addNode(name string, kind NodeKind, p geom.Point) int {
	l.Nodes = append(l.Nodes, Node{Name: name, Kind: kind, Pos: p})
	return len(l.Nodes) - 1
}

func (l *Layout) addEdge(from, to int, length float64) {
	l.Edges = append(l.Edges, Edge{From: from, To: to, Length: length})
}

// shiftPositive translates all nodes so the device (including waveguide
// width and margin) sits in positive coordinates.
func (l *Layout) shiftPositive(margin float64) {
	minX, minY := math.Inf(1), math.Inf(1)
	for _, n := range l.Nodes {
		minX = math.Min(minX, n.Pos.X)
		minY = math.Min(minY, n.Pos.Y)
	}
	l.Translate(-minX+l.Width/2+margin, -minY+l.Width/2+margin)
}

// Translate shifts every node by (dx, dy).
func (l *Layout) Translate(dx, dy float64) {
	for i := range l.Nodes {
		l.Nodes[i].Pos = l.Nodes[i].Pos.Add(geom.P(dx, dy))
	}
}

// AlignAxisToCells vertically shifts the layout so that its mirror
// symmetry axis (the y coordinate of node X, or of the first node if
// there is no X) lies exactly on a cell-center row of a mesh with cell
// size dx. Without this, rasterization can break the top/bottom symmetry
// that makes O1 ≡ O2.
func (l *Layout) AlignAxisToCells(dx float64) {
	if len(l.Nodes) == 0 {
		return
	}
	axis := l.Nodes[0].Pos.Y
	if i, err := l.NodeByName("X"); err == nil {
		axis = l.Nodes[i].Pos.Y
	}
	// Nearest y of form (j+0.5)·dx at or above the current axis.
	j := math.Round(axis/dx - 0.5)
	target := (j + 0.5) * dx
	l.Translate(0, target-axis)
}

// NodeByName returns the index of the named node, or an error.
func (l *Layout) NodeByName(name string) (int, error) {
	for i, n := range l.Nodes {
		if n.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("layout %s: %w: no node %q", l.Name, ErrUnknownComponent, name)
}

// Inputs returns the input node indices in declaration order.
func (l *Layout) Inputs() []int { return l.nodesOfKind(Input) }

// Outputs returns the output node indices in declaration order.
func (l *Layout) Outputs() []int { return l.nodesOfKind(Output) }

// Terminations returns the absorbing end node indices.
func (l *Layout) Terminations() []int { return l.nodesOfKind(Termination) }

func (l *Layout) nodesOfKind(k NodeKind) []int {
	var out []int
	for i, n := range l.Nodes {
		if n.Kind == k {
			out = append(out, i)
		}
	}
	return out
}

// Shape returns the union of waveguide capsules of the layout.
func (l *Layout) Shape() geom.Shape {
	shapes := make([]geom.Shape, 0, len(l.Edges))
	for _, e := range l.Edges {
		shapes = append(shapes, geom.Capsule{
			A: l.Nodes[e.From].Pos,
			B: l.Nodes[e.To].Pos,
			W: l.Width,
		})
	}
	return geom.Union(shapes...)
}

// Bounds returns the bounding box of the layout shape.
func (l *Layout) Bounds() geom.BBox { return l.Shape().Bounds() }

// Mesh constructs a simulation mesh with square cells of size dx covering
// the layout bounds plus its margin (already included by the builders via
// shiftPositive; a symmetric margin is added on the far sides here).
func (l *Layout) Mesh(dx, thickness float64) (grid.Mesh, error) {
	b := l.Bounds()
	// Mirror the near-side margin (distance from origin to bbox min).
	nx := int(math.Ceil((b.Max.X + b.Min.X) / dx))
	ny := int(math.Ceil((b.Max.Y + b.Min.Y) / dx))
	return grid.NewMesh(nx, ny, dx, dx, thickness)
}

// Rasterize marks the mesh cells covered by the layout's waveguides.
func (l *Layout) Rasterize(m grid.Mesh) grid.Region {
	return geom.Rasterize(m, l.Shape())
}

// PathLengthInLambda reports the total centerline length of the directed
// path through the named nodes, in units of λ. It is used by tests to
// verify the paper's design rule that interfering paths are integer
// multiples of the wavelength.
func (l *Layout) PathLengthInLambda(names ...string) (float64, error) {
	if len(names) < 2 {
		return 0, fmt.Errorf("layout: path needs at least two nodes")
	}
	total := 0.0
	for i := 0; i+1 < len(names); i++ {
		from, err := l.NodeByName(names[i])
		if err != nil {
			return 0, err
		}
		to, err := l.NodeByName(names[i+1])
		if err != nil {
			return 0, err
		}
		found := false
		for _, e := range l.Edges {
			if (e.From == from && e.To == to) || (e.From == to && e.To == from) {
				total += e.Length
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("layout %s: no edge %s–%s", l.Name, names[i], names[i+1])
		}
	}
	return total / l.Lambda, nil
}

// String summarizes the layout.
func (l *Layout) String() string {
	b := l.Bounds()
	return fmt.Sprintf("%s: %d nodes, %d arms, %.0f×%.0f nm, λ=%.0f nm, w=%.0f nm",
		l.Name, len(l.Nodes), len(l.Edges),
		b.Width()*1e9, b.Height()*1e9, l.Lambda*1e9, l.Width*1e9)
}

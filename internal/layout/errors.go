package layout

import "errors"

// Sentinel errors shared across the gate stack. They live in layout —
// the bottom of the dependency graph — so core, the root package, and
// the command front-ends can all wrap them with %w and callers can test
// with errors.Is instead of matching message strings.
var (
	// ErrUnknownGate reports a gate kind or gate name that no builder
	// recognizes.
	ErrUnknownGate = errors.New("unknown gate")
	// ErrBadInputCount reports an input slice whose length does not match
	// the gate's transducer count.
	ErrBadInputCount = errors.New("bad input count")
	// ErrUnknownComponent reports a lookup of a node, field component, or
	// circuit element that does not exist.
	ErrUnknownComponent = errors.New("unknown component")
)

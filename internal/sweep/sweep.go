// Package sweep implements the paper's §IV-D robustness studies:
// geometric variability (waveguide width variation, edge roughness — the
// trapezoidal cross-section of ref [36] appears in a 2-D film model as an
// effective width change) and thermal noise, evaluated as parameter
// sweeps over gate truth tables.
//
// Sweeps are expressed against a TableRunner so the same harness drives
// the fast behavioral backend (for smoke tests), the micromagnetic
// backend (for the real experiments, see cmd/swsim), or a fake (for unit
// tests).
package sweep

import (
	"context"
	"fmt"
	"math"

	"spinwave/internal/core"
	"spinwave/internal/detect"
	"spinwave/internal/dsp"
	"spinwave/internal/engine"
	"spinwave/internal/grid"
	"spinwave/internal/layout"
	"spinwave/internal/obs"
)

// TableRunner evaluates a gate truth table for a given spec.
type TableRunner func(spec layout.Spec) (*core.TruthTable, error)

// TableRunnerContext is TableRunner with cancellation support; sweep
// points launched through an engine receive a context that is cancelled
// as soon as any sibling point fails.
type TableRunnerContext func(ctx context.Context, spec layout.Spec) (*core.TruthTable, error)

// runPoints evaluates one sweep point per parameter: serially when eng
// is nil, otherwise concurrently through eng's coarse task pool (sweep
// points are embarrassingly parallel — the §IV-D robustness studies are
// the first workload that saturates the engine). Results always come
// back in parameter order.
func runPoints(ctx context.Context, eng *engine.Engine, params []float64, eval func(ctx context.Context, i int, param float64) (*core.TruthTable, error), describe func(param float64) string) ([]Result, error) {
	initMetrics()
	out := make([]Result, len(params))
	do := func(ctx context.Context, i int) error {
		span := obs.StartSpan("sweep.point")
		tt, err := eval(ctx, i, params[i])
		span.End()
		if err != nil {
			mPointsErr.Inc()
			return fmt.Errorf("sweep: %s: %w", describe(params[i]), err)
		}
		mPointsOK.Inc()
		out[i] = point(params[i], tt)
		return nil
	}
	if eng == nil {
		for i := range params {
			if err := do(ctx, i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	if err := eng.Map(ctx, len(params), do); err != nil {
		return nil, err
	}
	return out, nil
}

// Result is one sweep point.
type Result struct {
	// Param is the swept value (width scale, temperature, roughness ...).
	Param float64
	// Correct reports whether every truth-table case decoded correctly.
	Correct bool
	// FanOutMismatch is the worst |O1−O2| normalized amplitude gap.
	FanOutMismatch float64
	// Margin is the worst-case detection margin: distance of the phase
	// from the π/2 decision boundary (phase detection) or of the
	// normalized amplitude from the 0.5 threshold (threshold detection).
	Margin float64
}

// Width sweeps the waveguide width by the given scale factors.
func Width(spec layout.Spec, scales []float64, run TableRunner) ([]Result, error) {
	return WidthContext(context.Background(), nil, spec, scales,
		func(_ context.Context, sp layout.Spec) (*core.TruthTable, error) { return run(sp) })
}

// WidthContext is Width with cancellation and, when eng is non-nil,
// concurrent evaluation of the sweep points on the engine's task pool.
func WidthContext(ctx context.Context, eng *engine.Engine, spec layout.Spec, scales []float64, run TableRunnerContext) ([]Result, error) {
	if len(scales) == 0 {
		return nil, fmt.Errorf("sweep: no width scales")
	}
	for _, s := range scales {
		if s <= 0 {
			return nil, fmt.Errorf("sweep: width scale %g must be positive", s)
		}
	}
	return runPoints(ctx, eng, scales,
		func(ctx context.Context, _ int, s float64) (*core.TruthTable, error) {
			sp := spec
			sp.Width = spec.Width * s
			return run(ctx, sp)
		},
		func(s float64) string { return fmt.Sprintf("width scale %g", s) })
}

// Thermal sweeps the simulation temperature.
func Thermal(temps []float64, run func(temperature float64) (*core.TruthTable, error)) ([]Result, error) {
	return ThermalContext(context.Background(), nil, temps,
		func(_ context.Context, t float64) (*core.TruthTable, error) { return run(t) })
}

// ThermalContext is Thermal with cancellation and optional engine-backed
// concurrency across temperatures.
func ThermalContext(ctx context.Context, eng *engine.Engine, temps []float64, run func(ctx context.Context, temperature float64) (*core.TruthTable, error)) ([]Result, error) {
	if len(temps) == 0 {
		return nil, fmt.Errorf("sweep: no temperatures")
	}
	for _, t := range temps {
		if t < 0 {
			return nil, fmt.Errorf("sweep: temperature %g must be non-negative", t)
		}
	}
	return runPoints(ctx, eng, temps,
		func(ctx context.Context, _ int, t float64) (*core.TruthTable, error) { return run(ctx, t) },
		func(t float64) string { return fmt.Sprintf("T=%g K", t) })
}

// Roughness sweeps the edge-roughness probability using a runner that
// receives a core.MicromagConfig-compatible region mutator.
func Roughness(probs []float64, seed int64, run func(mutator func(grid.Mesh, grid.Region) grid.Region) (*core.TruthTable, error)) ([]Result, error) {
	return RoughnessContext(context.Background(), nil, probs, seed,
		func(_ context.Context, mut func(grid.Mesh, grid.Region) grid.Region) (*core.TruthTable, error) {
			return run(mut)
		})
}

// RoughnessContext is Roughness with cancellation and optional
// engine-backed concurrency across roughness probabilities. Each point
// gets a distinct deterministic seed (seed + point index), as before.
func RoughnessContext(ctx context.Context, eng *engine.Engine, probs []float64, seed int64, run func(ctx context.Context, mutator func(grid.Mesh, grid.Region) grid.Region) (*core.TruthTable, error)) ([]Result, error) {
	if len(probs) == 0 {
		return nil, fmt.Errorf("sweep: no roughness probabilities")
	}
	for _, p := range probs {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("sweep: roughness probability %g outside [0,1]", p)
		}
	}
	return runPoints(ctx, eng, probs,
		func(ctx context.Context, i int, p float64) (*core.TruthTable, error) {
			return run(ctx, EdgeRoughness(p, seed+int64(i)))
		},
		func(p float64) string { return fmt.Sprintf("roughness %g", p) })
}

// point derives the sweep metrics from a truth table.
func point(param float64, tt *core.TruthTable) Result {
	return Result{
		Param:          param,
		Correct:        tt.AllCorrect(),
		FanOutMismatch: tt.FanOutMatched(),
		Margin:         Margin(tt),
	}
}

// Margin computes the worst-case detection margin of a truth table:
// for phase detection the distance of |Δφ| from π/2 (reference = the
// first case's phase per output), for threshold detection the distance
// of the normalized amplitude from 0.5.
func Margin(tt *core.TruthTable) float64 {
	worst := math.Inf(1)
	if len(tt.Cases) == 0 {
		return 0
	}
	refPhase := map[string]float64{}
	for _, o := range tt.Cases[0].Outputs {
		refPhase[o.Name] = o.Phase
	}
	for ci, c := range tt.Cases {
		for _, o := range c.Outputs {
			var m float64
			if tt.Detection == "threshold" {
				m = math.Abs(o.Normalized - 0.5)
			} else {
				if ci == 0 {
					continue // the reference case has no meaningful margin
				}
				d := math.Abs(dsp.PhaseDiff(o.Phase, refPhase[o.Name]))
				m = math.Abs(d - math.Pi/2)
			}
			if m < worst {
				worst = m
			}
		}
	}
	if math.IsInf(worst, 1) {
		return 0
	}
	return worst
}

// EdgeRoughness returns a region mutator that roughens waveguide edges:
// each material cell adjacent to vacuum is removed with probability p,
// and each vacuum cell adjacent to material is added with probability p,
// using a deterministic per-cell hash so results are reproducible. This
// models the fabrication edge roughness studied in refs [36,43].
func EdgeRoughness(p float64, seed int64) func(grid.Mesh, grid.Region) grid.Region {
	return func(mesh grid.Mesh, region grid.Region) grid.Region {
		if p == 0 {
			return region
		}
		out := region.Clone()
		for j := 0; j < mesh.Ny; j++ {
			for i := 0; i < mesh.Nx; i++ {
				idx := mesh.Idx(i, j)
				boundary := false
				for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
					ni, nj := i+d[0], j+d[1]
					if ni < 0 || ni >= mesh.Nx || nj < 0 || nj >= mesh.Ny {
						continue
					}
					if region[mesh.Idx(ni, nj)] != region[idx] {
						boundary = true
						break
					}
				}
				if !boundary {
					continue
				}
				if hashUniform(uint64(seed), uint64(idx)) < p {
					out[idx] = !region[idx]
				}
			}
		}
		return out
	}
}

// hashUniform maps (seed, cell) to a uniform value in [0, 1).
func hashUniform(seed, cell uint64) float64 {
	x := seed ^ (cell+0x9e3779b97f4a7c15)*0xbf58476d1ce4e5b9
	x ^= x >> 30
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}

// DimensionError sweeps a trunk-length (d2) fabrication error on the
// Majority gate, expressed as a fraction of λ. The paper's §III-A design
// rule requires the interfering path lengths to be accurate; this sweep
// measures how much error the phase detection tolerates. Each point runs
// the full truth table with the error injected on top of the calibrated
// I3 phase (an error of ε·λ is exactly a −2π·ε drive-phase offset).
func DimensionError(errorsLambda []float64,
	run func(phaseError float64) (*core.TruthTable, error)) ([]Result, error) {
	return DimensionErrorContext(context.Background(), nil, errorsLambda,
		func(_ context.Context, phaseError float64) (*core.TruthTable, error) { return run(phaseError) })
}

// DimensionErrorContext is DimensionError with cancellation and optional
// engine-backed concurrency across error magnitudes.
func DimensionErrorContext(ctx context.Context, eng *engine.Engine, errorsLambda []float64,
	run func(ctx context.Context, phaseError float64) (*core.TruthTable, error)) ([]Result, error) {
	if len(errorsLambda) == 0 {
		return nil, fmt.Errorf("sweep: no dimension errors")
	}
	for _, e := range errorsLambda {
		if math.Abs(e) > 0.5 {
			return nil, fmt.Errorf("sweep: dimension error %g·λ outside ±0.5λ", e)
		}
	}
	return runPoints(ctx, eng, errorsLambda,
		func(ctx context.Context, _ int, e float64) (*core.TruthTable, error) {
			return run(ctx, -2*math.Pi*e)
		},
		func(e float64) string { return fmt.Sprintf("dimension error %g·λ", e) })
}

// CoherentReadout evaluates one thermal-noise case with coherent
// background subtraction: it runs the case and a drive-muted background
// with the identical (deterministic, seeded) noise realization and
// subtracts the complex lock-in outputs, recovering the spin-wave signal
// even when the raw noise floor exceeds it. This is the averaging-free
// equivalent of the multi-shot averaging a lab lock-in would do.
func CoherentReadout(m *core.Micromagnetic, inputs []bool) (map[string]detect.Readout, error) {
	driven, err := m.Run(inputs)
	if err != nil {
		return nil, err
	}
	background, err := m.RunBackground()
	if err != nil {
		return nil, err
	}
	out := make(map[string]detect.Readout, len(driven))
	for name, d := range driven {
		b, ok := background[name]
		if !ok {
			return nil, fmt.Errorf("sweep: background missing output %s", name)
		}
		re := d.Amplitude*math.Cos(d.Phase) - b.Amplitude*math.Cos(b.Phase)
		im := d.Amplitude*math.Sin(d.Phase) - b.Amplitude*math.Sin(b.Phase)
		out[name] = detect.Readout{
			Probe:     name,
			Amplitude: math.Hypot(re, im),
			Phase:     math.Atan2(im, re),
		}
	}
	return out, nil
}

// AllCorrect reports whether every sweep point kept the gate functional —
// the paper's §IV-D claim is that moderate variability and thermal noise
// do "not disturb the gate functionality".
func AllCorrect(results []Result) bool {
	for _, r := range results {
		if !r.Correct {
			return false
		}
	}
	return true
}

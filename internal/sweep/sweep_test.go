package sweep

import (
	"context"
	"errors"
	"math"
	"testing"

	"spinwave/internal/core"
	"spinwave/internal/detect"
	"spinwave/internal/engine"
	"spinwave/internal/grid"
	"spinwave/internal/layout"
	"spinwave/internal/material"
)

func behavioralXORRunner(t *testing.T) TableRunner {
	t.Helper()
	return func(spec layout.Spec) (*core.TruthTable, error) {
		b, err := core.NewBehavioral(core.XOR, spec, material.FeCoB())
		if err != nil {
			return nil, err
		}
		return core.XORTruthTable(b, false)
	}
}

func TestWidthSweepBehavioral(t *testing.T) {
	res, err := Width(layout.PaperSpec(), []float64{0.8, 0.9, 1.0}, behavioralXORRunner(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	if !AllCorrect(res) {
		t.Error("behavioral XOR failed under width scaling")
	}
	for _, r := range res {
		if r.Margin <= 0 {
			t.Errorf("scale %g: margin %g", r.Param, r.Margin)
		}
	}
}

func TestWidthSweepValidation(t *testing.T) {
	if _, err := Width(layout.PaperSpec(), nil, behavioralXORRunner(t)); err == nil {
		t.Error("empty scales accepted")
	}
	if _, err := Width(layout.PaperSpec(), []float64{-1}, behavioralXORRunner(t)); err == nil {
		t.Error("negative scale accepted")
	}
	// Width above λ must propagate the layout validation error.
	if _, err := Width(layout.PaperSpec(), []float64{2}, behavioralXORRunner(t)); err == nil {
		t.Error("over-wide scale accepted")
	}
}

func TestThermalSweepValidation(t *testing.T) {
	runner := func(T float64) (*core.TruthTable, error) {
		b, err := core.NewBehavioral(core.XOR, layout.PaperSpec(), material.FeCoB())
		if err != nil {
			return nil, err
		}
		return core.XORTruthTable(b, false)
	}
	if _, err := Thermal(nil, runner); err == nil {
		t.Error("empty temperature list accepted")
	}
	if _, err := Thermal([]float64{-5}, runner); err == nil {
		t.Error("negative temperature accepted")
	}
	res, err := Thermal([]float64{0, 300}, runner)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || !AllCorrect(res) {
		t.Errorf("thermal sweep results wrong: %+v", res)
	}
}

func TestMarginThresholdAndPhase(t *testing.T) {
	tt := &core.TruthTable{
		Detection: "threshold",
		Cases: []core.CaseResult{
			{Outputs: []core.OutputResult{{Name: "O1", Normalized: 1.0}}},
			{Outputs: []core.OutputResult{{Name: "O1", Normalized: 0.1}}},
		},
	}
	if got := Margin(tt); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("threshold margin = %g, want 0.4", got)
	}
	phase := &core.TruthTable{
		Detection: "phase",
		Cases: []core.CaseResult{
			{Outputs: []core.OutputResult{{Name: "O1", Phase: 0.2}}},
			{Outputs: []core.OutputResult{{Name: "O1", Phase: 0.2 + math.Pi}}},
			{Outputs: []core.OutputResult{{Name: "O1", Phase: 0.2 + 1.0}}},
		},
	}
	// Margins: |π−π/2| = π/2 and |1−π/2| ≈ 0.5708; worst ≈ 0.5708.
	if got := Margin(phase); math.Abs(got-(math.Pi/2-1)) > 1e-9 {
		t.Errorf("phase margin = %g", got)
	}
	if got := Margin(&core.TruthTable{}); got != 0 {
		t.Errorf("empty margin = %g", got)
	}
}

func TestEdgeRoughnessMutator(t *testing.T) {
	mesh := grid.MustMesh(20, 10, 5e-9, 5e-9, 1e-9)
	region := grid.RectRegion(mesh, 10e-9, 10e-9, 90e-9, 40e-9)
	base := region.Count()

	// p = 0: identity.
	same := EdgeRoughness(0, 1)(mesh, region)
	if same.Count() != base {
		t.Error("p=0 changed the region")
	}
	// p = 0.5: changes some boundary cells, deterministically per seed.
	r1 := EdgeRoughness(0.5, 1)(mesh, region)
	r2 := EdgeRoughness(0.5, 1)(mesh, region)
	r3 := EdgeRoughness(0.5, 2)(mesh, region)
	if r1.Count() == base {
		t.Error("p=0.5 changed nothing")
	}
	diff12, diff13 := 0, 0
	for i := range r1 {
		if r1[i] != r2[i] {
			diff12++
		}
		if r1[i] != r3[i] {
			diff13++
		}
	}
	if diff12 != 0 {
		t.Error("same seed produced different roughness")
	}
	if diff13 == 0 {
		t.Error("different seeds produced identical roughness")
	}
	// Interior cells untouched.
	interior := mesh.Idx(10, 5)
	if !r1[interior] {
		t.Error("interior cell removed")
	}
	// Far vacuum untouched.
	if r1[mesh.Idx(0, 0)] {
		t.Error("far vacuum cell added")
	}
}

func TestRoughnessSweepWithFakeRunner(t *testing.T) {
	calls := 0
	run := func(mut func(grid.Mesh, grid.Region) grid.Region) (*core.TruthTable, error) {
		calls++
		// Exercise the mutator on a toy region to prove it is usable.
		mesh := grid.MustMesh(4, 4, 1e-9, 1e-9, 1e-9)
		_ = mut(mesh, grid.FullRegion(mesh))
		return &core.TruthTable{
			Detection: "threshold",
			Cases: []core.CaseResult{
				{Correct: true, Outputs: []core.OutputResult{{Name: "O1", Normalized: 1}}},
			},
		}, nil
	}
	res, err := Roughness([]float64{0, 0.1, 0.2}, 7, run)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || len(res) != 3 {
		t.Errorf("calls=%d results=%d", calls, len(res))
	}
	if !AllCorrect(res) {
		t.Error("fake runner marked incorrect")
	}
	if _, err := Roughness([]float64{1.5}, 7, run); err == nil {
		t.Error("probability > 1 accepted")
	}
	if _, err := Roughness(nil, 7, run); err == nil {
		t.Error("empty probabilities accepted")
	}
}

// TestMicromagneticThermalXOR verifies the paper's §IV-D claim in-repo:
// at 300 K the XOR gate still decodes correctly (single-case smoke: one
// constructive and one destructive input pair).
func TestMicromagneticThermalXOR(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	// SNR engineering: a 1 nm film at 300 K has a large thermal field per
	// cell, so the readout needs a stronger drive (still small-angle) and
	// a longer lock-in window than the noise-free runs.
	m, err := core.NewMicromagnetic(core.XOR, core.MicromagConfig{
		Spec:           layout.ReducedSpec(),
		Mat:            material.FeCoB(),
		Temperature:    300,
		Seed:           42,
		DriveField:     20e-3,
		MeasurePeriods: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Raw lock-in output is noise-dominated at 300 K for this film, so
	// use the coherent background-subtracted readout.
	ref, err := CoherentReadout(m, []bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	diff, err := CoherentReadout(m, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []string{"O1", "O2"} {
		ratio := diff[o].Amplitude / ref[o].Amplitude
		if ratio > 0.5 {
			t.Errorf("thermal destructive/constructive at %s = %.3f, want < 0.5", o, ratio)
		}
	}
}

// TestMicromagneticRoughXOR: moderate edge roughness must not break the
// gate (§IV-D, refs [36,43]).
func TestMicromagneticRoughXOR(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	m, err := core.NewMicromagnetic(core.XOR, core.MicromagConfig{
		Spec:          layout.ReducedSpec(),
		Mat:           material.FeCoB(),
		RegionMutator: EdgeRoughness(0.15, 11),
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := m.Run([]bool{false, false})
	if err != nil {
		t.Fatal(err)
	}
	diff, err := m.Run([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range []string{"O1", "O2"} {
		ratio := diff[o].Amplitude / ref[o].Amplitude
		if ratio > 0.5 {
			t.Errorf("rough destructive/constructive at %s = %.3f, want < 0.5", o, ratio)
		}
	}
}

func TestDimensionErrorBehavioral(t *testing.T) {
	// Behavioral runner: inject the phase error on I3's drive directly.
	run := func(phaseError float64) (*core.TruthTable, error) {
		b, err := core.NewBehavioral(core.MAJ3, layout.PaperSpec(), material.FeCoB())
		if err != nil {
			return nil, err
		}
		return core.MajorityTruthTable(&phaseErrBackend{inner: b, err: phaseError})
	}
	res, err := DimensionError([]float64{0, 0.05, 0.1, 0.2}, run)
	if err != nil {
		t.Fatal(err)
	}
	// Small errors keep the gate functional; the margin shrinks
	// monotonically with the error magnitude.
	for i, r := range res {
		if i <= 2 && !r.Correct {
			t.Errorf("error %g·λ broke the gate", r.Param)
		}
		if i > 0 && r.Margin > res[i-1].Margin+1e-9 {
			t.Errorf("margin did not shrink: %g·λ -> %g, prev %g", r.Param, r.Margin, res[i-1].Margin)
		}
	}
	if _, err := DimensionError(nil, run); err == nil {
		t.Error("empty error list accepted")
	}
	if _, err := DimensionError([]float64{0.9}, run); err == nil {
		t.Error("absurd error accepted")
	}
}

// phaseErrBackend wraps a MAJ3 backend, rotating the detected output
// phase whenever I3 differs from the majority path — a cheap behavioral
// stand-in for a trunk-length error, implemented by offsetting the I3
// drive phasor.
type phaseErrBackend struct {
	inner *core.Behavioral
	err   float64
}

func (p *phaseErrBackend) Name() string        { return "behavioral+dimension-error" }
func (p *phaseErrBackend) Kind() core.GateKind { return core.MAJ3 }

func (p *phaseErrBackend) Run(inputs []bool) (map[string]detect.Readout, error) {
	drives := map[string]complex128{
		"I1": phasorDrive(inputs[0], 0),
		"I2": phasorDrive(inputs[1], 0),
		"I3": phasorDrive(inputs[2], p.err),
	}
	out, err := p.inner.Net.Evaluate(drives)
	if err != nil {
		return nil, err
	}
	res := map[string]detect.Readout{}
	for name, v := range out {
		res[name] = detect.Readout{
			Probe:     name,
			Amplitude: math.Hypot(real(v), imag(v)),
			Phase:     math.Atan2(imag(v), real(v)),
		}
	}
	return res, nil
}

func phasorDrive(level bool, phaseOffset float64) complex128 {
	phi := phaseOffset
	if level {
		phi += math.Pi
	}
	return complex(math.Cos(phi), math.Sin(phi))
}

func behavioralXORContextRunner() TableRunnerContext {
	return func(ctx context.Context, spec layout.Spec) (*core.TruthTable, error) {
		b, err := core.NewBehavioral(core.XOR, spec, material.FeCoB())
		if err != nil {
			return nil, err
		}
		return core.XORTruthTableContext(ctx, b, false)
	}
}

func TestWidthSweepEngineMatchesSerial(t *testing.T) {
	scales := []float64{0.7, 0.8, 0.9, 1.0}
	serial, err := WidthContext(context.Background(), nil, layout.PaperSpec(), scales, behavioralXORContextRunner())
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.WithWorkers(4))
	conc, err := WidthContext(context.Background(), eng, layout.PaperSpec(), scales, behavioralXORContextRunner())
	if err != nil {
		t.Fatal(err)
	}
	if len(conc) != len(serial) {
		t.Fatalf("engine sweep returned %d points, serial %d", len(conc), len(serial))
	}
	for i := range conc {
		if conc[i].Param != serial[i].Param || conc[i].Margin != serial[i].Margin ||
			conc[i].Correct != serial[i].Correct {
			t.Fatalf("point %d differs: engine %+v, serial %+v", i, conc[i], serial[i])
		}
	}
}

func TestWidthSweepContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := engine.New(engine.WithWorkers(2))
	_, err := WidthContext(ctx, eng, layout.PaperSpec(), []float64{0.9, 1.0}, behavioralXORContextRunner())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
}

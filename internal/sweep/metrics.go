package sweep

import (
	"sync"

	"spinwave/internal/obs"
)

// Sweep-point throughput counters in the obs default registry,
// registered lazily on the first runPoints call.
var (
	metricsOnce sync.Once

	mPointsOK  *obs.Counter
	mPointsErr *obs.Counter
)

func initMetrics() {
	metricsOnce.Do(func() {
		r := obs.Default()
		r.Describe("spinwave_sweep_points_total", "sweep points evaluated, by outcome")
		mPointsOK = r.Counter("spinwave_sweep_points_total", obs.L("result", "ok"))
		mPointsErr = r.Counter("spinwave_sweep_points_total", obs.L("result", "error"))
	})
}

package parallel

import (
	"sync"

	"spinwave/internal/obs"
)

// Data-parallel throughput counters in the obs default registry,
// registered lazily on the first word evaluation.
var (
	metricsOnce sync.Once

	mWords    *obs.Counter
	mChannels *obs.Counter
)

func initMetrics() {
	metricsOnce.Do(func() {
		r := obs.Default()
		r.Describe("spinwave_parallel_words_total", "n-bit word evaluations through the FDM gate")
		mWords = r.Counter("spinwave_parallel_words_total")
		r.Describe("spinwave_parallel_channels_total", "frequency channels evaluated across all words")
		mChannels = r.Counter("spinwave_parallel_channels_total")
	})
}

package parallel

import (
	"context"
	"fmt"
	"math"
	"sync"

	"spinwave/internal/core"
	"spinwave/internal/detect"
	"spinwave/internal/dispersion"
	"spinwave/internal/excite"
	"spinwave/internal/grid"
	"spinwave/internal/layout"
	"spinwave/internal/llg"
	"spinwave/internal/material"
	"spinwave/internal/units"
	"spinwave/internal/vec"
)

// MicromagXOR runs the n-bit frequency-parallel XOR gate in the full LLG
// solver: every input antenna is driven with the superposition of its n
// channel tones (multiple single-tone antennas over the same cells — the
// field sources add linearly), and every output probe is lock-in
// analyzed once per channel frequency.
type MicromagXOR struct {
	Spec     layout.Spec
	Mat      material.Params
	Channels []Channel
	FBase    float64 // common base frequency of the channel grid

	L      *layout.Layout
	Mesh   grid.Mesh
	Region grid.Region

	dt          float64
	duration    float64
	sampleEvery int
	basePeriods int // lock-in window in whole base periods
	driveField  float64

	refMu sync.Mutex           // guards refs for concurrent Run callers
	refs  map[string][]float64 // per-output, per-channel reference amplitude
}

// NewMicromagXOR prepares the n-bit parallel XOR simulation. Channel
// carriers share a base-frequency grid, so a readout window holding whole
// base periods contains an integer number of every carrier's periods —
// the lock-ins are then orthogonal and a strong channel cannot leak into
// a destructively-interfering one.
func NewMicromagXOR(spec layout.Spec, mat material.Params, nbits int) (*MicromagXOR, error) {
	plan, err := PlanXORChannels(spec, mat, nbits)
	if err != nil {
		return nil, err
	}
	channels := plan.Channels
	l, err := layout.BuildXOR(spec)
	if err != nil {
		return nil, err
	}
	cell := spec.Lambda / 11
	l.AlignAxisToCells(cell)
	mesh, err := l.Mesh(cell, units.NM(1))
	if err != nil {
		return nil, err
	}
	region := l.Rasterize(mesh)
	if region.Count() == 0 {
		return nil, fmt.Errorf("parallel: empty rasterization")
	}
	model, err := dispersion.New(mat, mesh.Dz, dispersion.LocalDemag)
	if err != nil {
		return nil, err
	}
	// Timing is governed by the slowest channel (longest wavelength).
	minVg := math.Inf(1)
	minF := math.Inf(1)
	for _, ch := range channels {
		if vg := model.GroupVelocity(ch.K); vg < minVg {
			minVg = vg
		}
		if ch.Freq < minF {
			minF = ch.Freq
		}
	}
	b := l.Bounds()
	travel := (b.Width() + b.Height()) / minVg
	const basePeriods = 2
	window := basePeriods / plan.FBase
	duration := 3/minF + 1.6*travel + window + 1/minF
	return &MicromagXOR{
		Spec:        spec,
		Mat:         mat,
		Channels:    channels,
		FBase:       plan.FBase,
		L:           l,
		Mesh:        mesh,
		Region:      region,
		dt:          llg.StableDt(mesh, mat),
		duration:    duration,
		sampleEvery: 2,
		basePeriods: basePeriods,
		driveField:  2e-3,
	}, nil
}

// Duration returns the per-case simulated time.
func (p *MicromagXOR) Duration() float64 { return p.duration }

// runCase simulates one (wordA, wordB) case and returns the raw per-
// channel lock-in amplitudes at each output. A cancelled context aborts
// the transient within one integrator step.
func (p *MicromagXOR) runCase(ctx context.Context, a, b Word) (map[string][]float64, error) {
	if len(a) != len(p.Channels) || len(b) != len(p.Channels) {
		return nil, fmt.Errorf("parallel: %w: words need %d bits", layout.ErrBadInputCount, len(p.Channels))
	}
	s, err := llg.New(p.Mesh, p.Region, p.Mat, p.dt)
	if err != nil {
		return nil, err
	}
	ramp := p.Spec.Tail
	if ramp <= 0 {
		ramp = 3 * p.Spec.Lambda
	}
	for _, ti := range p.L.Terminations() {
		n := p.L.Nodes[ti]
		s.AddAbsorberTowards(n.Pos.X, n.Pos.Y, ramp, 0.5)
	}
	rAnt := math.Max(p.Spec.Width/2, 1.5*p.Mesh.Dx)
	words := map[string]Word{"I1": a, "I2": b}
	for name, w := range words {
		ni, err := p.L.NodeByName(name)
		if err != nil {
			return nil, err
		}
		cells := p.nodeCells(p.L.Nodes[ni], rAnt)
		if len(cells) == 0 {
			return nil, fmt.Errorf("parallel: antenna %s empty", name)
		}
		for ci, ch := range p.Channels {
			ant, err := excite.NewAntenna(fmt.Sprintf("%s.ch%d", name, ci), cells,
				vec.UnitX, p.driveField, ch.Freq, 0)
			if err != nil {
				return nil, err
			}
			ant.SetLogic(w[ci])
			ant.Env = excite.RampEnvelope(3 / ch.Freq)
			s.Eval.Sources = append(s.Eval.Sources, ant)
		}
	}
	probes := map[string]*detect.Probe{}
	for _, oi := range p.L.Outputs() {
		n := p.L.Nodes[oi]
		cells := p.nodeCells(n, rAnt)
		pr, err := detect.NewProbe(n.Name, cells)
		if err != nil {
			return nil, err
		}
		probes[n.Name] = pr
	}
	if err := s.RunContext(ctx, p.duration, func(step int) bool {
		if step%p.sampleEvery == 0 {
			for _, pr := range probes {
				pr.Sample(s.Time, s.M)
			}
		}
		return true
	}); err != nil {
		return nil, fmt.Errorf("parallel: case aborted: %w", err)
	}
	if err := s.CheckFinite(); err != nil {
		return nil, err
	}
	out := map[string][]float64{}
	for name, pr := range probes {
		amps := make([]float64, len(p.Channels))
		for ci, ch := range p.Channels {
			// Orthogonal window: basePeriods whole base periods contain
			// basePeriods·BaseMultiple whole periods of this carrier.
			periods := p.basePeriods * ch.BaseMultiple
			r, err := pr.LockIn(ch.Freq, periods)
			if err != nil {
				return nil, err
			}
			amps[ci] = r.Amplitude
		}
		out[name] = amps
	}
	return out, nil
}

func (p *MicromagXOR) nodeCells(n layout.Node, radius float64) []int {
	var cells []int
	for j := 0; j < p.Mesh.Ny; j++ {
		for i := 0; i < p.Mesh.Nx; i++ {
			idx := p.Mesh.Idx(i, j)
			if !p.Region[idx] {
				continue
			}
			x, y := p.Mesh.CellCenter(i, j)
			if math.Hypot(x-n.Pos.X, y-n.Pos.Y) <= radius {
				cells = append(cells, idx)
			}
		}
	}
	return cells
}

// references lazily computes the all-zeros amplitudes per channel. The
// mutex serializes concurrent first callers; later callers reuse the
// memoized result.
func (p *MicromagXOR) references(ctx context.Context) (map[string][]float64, error) {
	p.refMu.Lock()
	defer p.refMu.Unlock()
	if p.refs != nil {
		return p.refs, nil
	}
	zero := make(Word, len(p.Channels))
	refs, err := p.runCase(ctx, zero, zero)
	if err != nil {
		return nil, err
	}
	for name, amps := range refs {
		for ci, a := range amps {
			if a <= 0 {
				return nil, fmt.Errorf("parallel: zero reference on %s channel %d", name, ci)
			}
		}
	}
	p.refs = refs
	return refs, nil
}

// Run evaluates XOR(a, b) per channel and returns the decoded output
// words plus the normalized per-channel amplitudes.
func (p *MicromagXOR) Run(a, b Word) (map[string]Word, map[string][]float64, error) {
	return p.RunContext(context.Background(), a, b)
}

// RunContext is Run with cancellation: a cancelled or expired context
// aborts the multi-tone transient within one integrator step.
func (p *MicromagXOR) RunContext(ctx context.Context, a, b Word) (map[string]Word, map[string][]float64, error) {
	refs, err := p.references(ctx)
	if err != nil {
		return nil, nil, err
	}
	raw, err := p.runCase(ctx, a, b)
	if err != nil {
		return nil, nil, err
	}
	words := map[string]Word{}
	norm := map[string][]float64{}
	for name, amps := range raw {
		w := make(Word, len(amps))
		ns := make([]float64, len(amps))
		for ci, amp := range amps {
			ns[ci] = amp / refs[name][ci]
			w[ci] = ns[ci] <= 0.5 // threshold detection per channel
		}
		words[name] = w
		norm[name] = ns
	}
	return words, norm, nil
}

// compile-time check that the package stays aligned with core's naming.
var _ = core.XOR

package parallel

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"spinwave/internal/core"
	"spinwave/internal/engine"
	"spinwave/internal/layout"
	"spinwave/internal/material"
)

func TestPlanXORChannels(t *testing.T) {
	spec := layout.PaperMicromagSpec()
	plan, err := PlanXORChannels(spec, material.FeCoB(), 3)
	if err != nil {
		t.Fatal(err)
	}
	chs := plan.Channels
	if len(chs) != 3 {
		t.Fatalf("channels = %d", len(chs))
	}
	if plan.FBase <= 0 {
		t.Fatal("no base frequency")
	}
	for i, ch := range chs {
		if ch.Lambda <= 2*spec.Width {
			t.Errorf("channel %d multimode: λ=%g", i, ch.Lambda)
		}
		if ch.Freq <= 0 {
			t.Errorf("channel %d frequency %g", i, ch.Freq)
		}
		// Every carrier sits exactly on the base grid — the property
		// that makes the multiplexed lock-ins orthogonal.
		if ch.BaseMultiple < 1 || math.Abs(ch.Freq-float64(ch.BaseMultiple)*plan.FBase) > 1e-3 {
			t.Errorf("channel %d off the base grid: f=%g, mult=%d, base=%g",
				i, ch.Freq, ch.BaseMultiple, plan.FBase)
		}
		if i > 0 {
			sep := math.Abs(chs[i-1].Freq-ch.Freq) / chs[i-1].Freq
			if sep < MinSeparation {
				t.Errorf("channels %d/%d separation %.3f too small", i-1, i, sep)
			}
		}
	}
	if _, err := PlanXORChannels(spec, material.FeCoB(), 0); err == nil {
		t.Error("zero channels accepted")
	}
	if _, err := PlanXORChannels(layout.Spec{}, material.FeCoB(), 2); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestPlanMAJChannels(t *testing.T) {
	spec := layout.PaperMicromagSpec()
	// Δ = (16+4) − (2·6+2) = 6λ → ladder λ, 6λ/5, 6λ/4, ... with the
	// single-mode and separation filters applied.
	chs, err := PlanMAJChannels(spec, material.FeCoB(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(chs) != 2 {
		t.Fatalf("channels = %d", len(chs))
	}
	delta := 6 * spec.Lambda
	for _, ch := range chs {
		ratio := delta / ch.Lambda
		if math.Abs(ratio-math.Round(ratio)) > 1e-9 {
			t.Errorf("channel λ=%.3g does not divide Δ: ratio %.6f", ch.Lambda, ratio)
		}
		if ch.Lambda <= 2*spec.Width {
			t.Errorf("channel multimode: λ=%g", ch.Lambda)
		}
	}
	// Asking for too many channels must fail loudly.
	if _, err := PlanMAJChannels(spec, material.FeCoB(), 8); err == nil {
		t.Error("infeasible channel count accepted")
	}
}

func TestWordConversions(t *testing.T) {
	w := WordFromUint(0b101, 3)
	if !w[0] || w[1] || !w[2] {
		t.Errorf("WordFromUint = %v", w)
	}
	if w.Uint() != 5 {
		t.Errorf("Uint = %d", w.Uint())
	}
	if got := WordFromUint(0, 4).Uint(); got != 0 {
		t.Errorf("zero word = %d", got)
	}
}

func TestParallelXORBehavioralExhaustive(t *testing.T) {
	g, err := NewGate(core.XOR, layout.PaperMicromagSpec(), material.FeCoB(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.NBits() != 3 {
		t.Fatalf("bits = %d", g.NBits())
	}
	for a := uint(0); a < 8; a++ {
		for b := uint(0); b < 8; b++ {
			out, err := g.Eval(WordFromUint(a, 3), WordFromUint(b, 3))
			if err != nil {
				t.Fatal(err)
			}
			want := a ^ b
			for name, w := range out {
				if w.Uint() != want {
					t.Errorf("%d^%d at %s = %d, want %d", a, b, name, w.Uint(), want)
				}
			}
		}
	}
}

func TestParallelMAJBehavioral(t *testing.T) {
	g, err := NewGate(core.MAJ3, layout.PaperMicromagSpec(), material.FeCoB(), 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw, cRaw uint8) bool {
		a := WordFromUint(uint(aRaw)&3, 2)
		b := WordFromUint(uint(bRaw)&3, 2)
		c := WordFromUint(uint(cRaw)&3, 2)
		out, err := g.Eval(a, b, c)
		if err != nil {
			return false
		}
		for ci := 0; ci < 2; ci++ {
			cnt := 0
			for _, w := range []Word{a, b, c} {
				if w[ci] {
					cnt++
				}
			}
			want := cnt >= 2
			if out["O1"][ci] != want || out["O2"][ci] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 64}); err != nil {
		t.Error(err)
	}
}

func TestGateEvalValidation(t *testing.T) {
	g, err := NewGate(core.XOR, layout.PaperMicromagSpec(), material.FeCoB(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Eval(WordFromUint(1, 2)); err == nil {
		t.Error("missing word accepted")
	}
	if _, err := g.Eval(WordFromUint(1, 3), WordFromUint(1, 2)); err == nil {
		t.Error("wrong width accepted")
	}
	if _, err := NewGate(core.MAJ3Single, layout.PaperMicromagSpec(), material.FeCoB(), 1); err == nil {
		t.Error("unsupported kind accepted")
	}
}

func TestChannelAmplitudeDiagnostic(t *testing.T) {
	g, err := NewGate(core.XOR, layout.PaperMicromagSpec(), material.FeCoB(), 2)
	if err != nil {
		t.Fatal(err)
	}
	same := []Word{WordFromUint(0, 2), WordFromUint(0, 2)}
	diff := []Word{WordFromUint(3, 2), WordFromUint(0, 2)}
	for ci := 0; ci < 2; ci++ {
		a0, err := g.channelAmplitude(same, ci, "O1")
		if err != nil {
			t.Fatal(err)
		}
		a1, err := g.channelAmplitude(diff, ci, "O1")
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a0-1) > 1e-9 {
			t.Errorf("channel %d equal-input amplitude %g", ci, a0)
		}
		if a1 > 1e-9 {
			t.Errorf("channel %d unequal-input amplitude %g", ci, a1)
		}
	}
}

// TestMicromagParallelXOR2Bit is the flagship extension experiment: two
// XOR operations ride through one physical gate simultaneously on two
// carrier frequencies and are recovered independently.
func TestMicromagParallelXOR2Bit(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	p, err := NewMicromagXOR(layout.ReducedSpec(), material.FeCoB(), 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, want uint }{
		{0b00, 0b00, 0b00},
		{0b01, 0b00, 0b01}, // channel 0 destructive... wait: XOR(1,0)=1
		{0b10, 0b11, 0b01},
		{0b11, 0b11, 0b00},
	}
	for _, c := range cases {
		out, norm, err := p.Run(WordFromUint(c.a, 2), WordFromUint(c.b, 2))
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"O1", "O2"} {
			if got := out[name].Uint(); got != c.want {
				t.Errorf("%02b^%02b at %s = %02b, want %02b (norm %v)",
					c.a, c.b, name, got, c.want, norm[name])
			}
		}
	}
}

func TestGateEvalContextEngineMatchesSerial(t *testing.T) {
	g, err := NewGate(core.XOR, layout.PaperMicromagSpec(), material.FeCoB(), 4)
	if err != nil {
		t.Fatal(err)
	}
	eng := engine.New(engine.WithWorkers(4))
	ctx := context.Background()
	for a := uint(0); a < 16; a += 3 {
		for b := uint(0); b < 16; b += 5 {
			serial, err := g.Eval(WordFromUint(a, 4), WordFromUint(b, 4))
			if err != nil {
				t.Fatal(err)
			}
			conc, err := g.EvalContext(ctx, eng, WordFromUint(a, 4), WordFromUint(b, 4))
			if err != nil {
				t.Fatal(err)
			}
			for name, w := range serial {
				if conc[name].Uint() != w.Uint() {
					t.Fatalf("%d^%d at %s: engine %d, serial %d", a, b, name, conc[name].Uint(), w.Uint())
				}
			}
		}
	}
}

func TestGateEvalContextCancellation(t *testing.T) {
	g, err := NewGate(core.XOR, layout.PaperMicromagSpec(), material.FeCoB(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := engine.New(engine.WithWorkers(2))
	if _, err := g.EvalContext(ctx, eng, WordFromUint(1, 2), WordFromUint(2, 2)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled eval returned %v, want context.Canceled", err)
	}
}

func TestGateEvalValidationSentinel(t *testing.T) {
	g, err := NewGate(core.XOR, layout.PaperMicromagSpec(), material.FeCoB(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Eval(WordFromUint(1, 2)); !errors.Is(err, layout.ErrBadInputCount) {
		t.Fatalf("one-word XOR eval returned %v, want ErrBadInputCount", err)
	}
	if _, err := g.Eval(WordFromUint(1, 2), Word{true}); !errors.Is(err, layout.ErrBadInputCount) {
		t.Fatalf("short word returned %v, want ErrBadInputCount", err)
	}
}

// Package parallel implements the n-bit data-parallel extension of the
// triangle gates: frequency-division multiplexing, as proposed by the
// same authors in "n-bit data parallel spin wave logic gate" (DATE 2020,
// the paper's ref [9]). Each bit rides its own carrier frequency through
// the same physical structure simultaneously; per-bit readout is a
// lock-in at that bit's frequency.
//
// Channel feasibility:
//
//   - every channel wavelength must stay single-mode: λ > 2·w in the
//     solver's exchange-dominated dispersion;
//   - the XOR gate interferes two equal-length paths, so *any* in-band
//     frequency works — its channel plan just spreads carriers far
//     enough apart for lock-in separation;
//   - the Majority gate additionally requires the body path and the I3
//     trunk path to stay phase-matched: their length difference Δ must
//     be an integer number m of the channel wavelength, giving the
//     discrete ladder λ_m = Δ/m.
package parallel

import (
	"context"
	"fmt"
	"math"
	"math/cmplx"

	"spinwave/internal/core"
	"spinwave/internal/dispersion"
	"spinwave/internal/engine"
	"spinwave/internal/layout"
	"spinwave/internal/material"
	"spinwave/internal/phasor"
	"spinwave/internal/units"
)

// Channel is one frequency-multiplexed bit lane.
type Channel struct {
	Bit    int
	Lambda float64 // m
	K      float64 // rad/m
	Freq   float64 // Hz (solver-matched dispersion branch)
	// BaseMultiple is Freq expressed as an integer multiple of the
	// plan's base frequency (0 when the plan has no common base, e.g.
	// the Majority ladder).
	BaseMultiple int
}

// Plan is a set of channels plus, when available, the common base
// frequency every carrier is an integer multiple of — a lock-in window
// holding whole base periods is then exactly orthogonal across channels
// (zero inter-channel leakage for steady tones).
type Plan struct {
	Channels []Channel
	FBase    float64 // Hz; 0 when no common base exists
}

// MinSeparation is the minimum relative frequency spacing between
// channels so finite-window lock-ins stay separable.
const MinSeparation = 0.12

// baseDivision is the grid divisor: carriers snap onto multiples of
// f_design/baseDivision.
const baseDivision = 8

// PlanXORChannels picks n single-mode channels for the XOR structure:
// the design wavelength first, then longer wavelengths, with every
// carrier snapped onto the common frequency grid f0/8 so multiplexed
// readout windows can be made exactly orthogonal.
func PlanXORChannels(spec layout.Spec, mat material.Params, n int) (Plan, error) {
	if n < 1 || n > 8 {
		return Plan{}, fmt.Errorf("parallel: channel count %d outside [1,8]", n)
	}
	if err := spec.Validate(); err != nil {
		return Plan{}, err
	}
	model, err := dispersion.New(mat, units.NM(1), dispersion.LocalDemag)
	if err != nil {
		return Plan{}, err
	}
	k0 := units.WaveNumber(spec.Lambda)
	f0 := model.Frequency(k0)
	fBase := f0 / baseDivision
	plan := Plan{FBase: fBase}
	kMax := units.WaveNumber(2 * spec.Width) // single-mode band edge
	targetLambda := spec.Lambda
	for bit := 0; bit < n; bit++ {
		if targetLambda <= 2*spec.Width {
			return Plan{}, fmt.Errorf("parallel: channel %d wavelength %.3g below single-mode limit %.3g",
				bit, targetLambda, 2*spec.Width)
		}
		fTarget := model.Frequency(units.WaveNumber(targetLambda))
		mult := int(math.Round(fTarget / fBase))
		if mult < 1 {
			return Plan{}, fmt.Errorf("parallel: channel %d below the frequency grid", bit)
		}
		f := float64(mult) * fBase
		if f <= model.Frequency(0) {
			return Plan{}, fmt.Errorf("parallel: channel %d frequency %.3g GHz below the band gap", bit, units.ToGHz(f))
		}
		k, err := model.SolveK(f, kMax)
		if err != nil {
			return Plan{}, fmt.Errorf("parallel: channel %d: %w", bit, err)
		}
		lambda := units.Wavelength(k)
		if lambda <= 2*spec.Width {
			return Plan{}, fmt.Errorf("parallel: channel %d snapped wavelength %.3g multimode", bit, lambda)
		}
		if len(plan.Channels) > 0 {
			prev := plan.Channels[len(plan.Channels)-1].Freq
			if math.Abs(prev-f)/prev < MinSeparation {
				return Plan{}, fmt.Errorf("parallel: channels %d/%d too close in frequency", bit-1, bit)
			}
		}
		plan.Channels = append(plan.Channels, Channel{
			Bit: bit, Lambda: lambda, K: k, Freq: f, BaseMultiple: mult,
		})
		targetLambda *= 1.5 // next carrier: longer wavelength, lower frequency
	}
	return plan, nil
}

// PlanMAJChannels picks up to n channels satisfying the Majority phase-
// matching ladder λ_m = Δ/m, where Δ = |(d2+d3) − (2·d1+body)| is the
// path-length difference between the I3 trunk route and the body route.
func PlanMAJChannels(spec layout.Spec, mat material.Params, n int) ([]Channel, error) {
	if n < 1 || n > 8 {
		return nil, fmt.Errorf("parallel: channel count %d outside [1,8]", n)
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	deltaN := (spec.D2N + spec.D3N) - (2*spec.D1N + spec.BodyN)
	if deltaN < 0 {
		deltaN = -deltaN
	}
	if deltaN == 0 {
		return nil, fmt.Errorf("parallel: degenerate geometry (equal path lengths) has no channel ladder")
	}
	delta := float64(deltaN) * spec.Lambda
	model, err := dispersion.New(mat, units.NM(1), dispersion.LocalDemag)
	if err != nil {
		return nil, err
	}
	var out []Channel
	var prevF float64
	for m := 1; m <= 8*deltaN && len(out) < n; m++ {
		lambda := delta / float64(m)
		if lambda <= 2*spec.Width {
			break // shorter wavelengths are multimode
		}
		// Keep channels within a factor ~2 of the design wavelength so
		// the waveguide stays a good fit (w ≤ λ).
		if lambda > 2.2*spec.Lambda || spec.Width > lambda {
			continue
		}
		k := units.WaveNumber(lambda)
		f := model.Frequency(k)
		if prevF != 0 && math.Abs(prevF-f)/prevF < MinSeparation {
			continue
		}
		out = append(out, Channel{Bit: len(out), Lambda: lambda, K: k, Freq: f})
		prevF = f
	}
	if len(out) < n {
		return nil, fmt.Errorf("parallel: geometry supports only %d of %d requested channels", len(out), n)
	}
	return out, nil
}

// Word is an n-bit value, least significant bit first, one bit per
// frequency channel.
type Word []bool

// Uint converts the word to an integer (bit 0 = LSB).
func (w Word) Uint() uint {
	var v uint
	for i, b := range w {
		if b {
			v |= 1 << i
		}
	}
	return v
}

// WordFromUint builds an n-bit word from an integer.
func WordFromUint(v uint, n int) Word {
	w := make(Word, n)
	for i := range w {
		w[i] = v&(1<<i) != 0
	}
	return w
}

// Gate is an n-bit data-parallel behavioral gate: one phasor network per
// channel over the same layout.
type Gate struct {
	Kind     core.GateKind
	Channels []Channel
	nets     []*phasor.Network
	refs     []map[string]complex128 // all-zeros reference per channel
}

// NewGate builds an n-bit parallel gate of the given kind (XOR or MAJ3)
// with an automatically planned channel set.
func NewGate(kind core.GateKind, spec layout.Spec, mat material.Params, nbits int) (*Gate, error) {
	var (
		channels []Channel
		l        *layout.Layout
		err      error
	)
	switch kind {
	case core.XOR:
		var plan Plan
		plan, err = PlanXORChannels(spec, mat, nbits)
		if err != nil {
			return nil, err
		}
		channels = plan.Channels
		l, err = layout.BuildXOR(spec)
	case core.MAJ3:
		channels, err = PlanMAJChannels(spec, mat, nbits)
		if err != nil {
			return nil, err
		}
		l, err = layout.BuildMAJ3(spec, false)
	default:
		return nil, fmt.Errorf("parallel: %w: unsupported gate kind %s", layout.ErrUnknownGate, kind)
	}
	if err != nil {
		return nil, err
	}
	model, err := dispersion.New(mat, units.NM(1), dispersion.LocalDemag)
	if err != nil {
		return nil, err
	}
	g := &Gate{Kind: kind, Channels: channels}
	zero := map[string]complex128{}
	for _, name := range kind.InputNames() {
		zero[name] = phasor.Drive(false)
	}
	for _, ch := range channels {
		net, err := phasor.New(l, ch.K, model.AttenuationLength(ch.K))
		if err != nil {
			return nil, err
		}
		net.JunctionLoss = 0.9
		ref, err := net.Evaluate(zero)
		if err != nil {
			return nil, err
		}
		g.nets = append(g.nets, net)
		g.refs = append(g.refs, ref)
	}
	return g, nil
}

// NBits returns the word width.
func (g *Gate) NBits() int { return len(g.Channels) }

// Eval evaluates the parallel gate: words[i] is the n-bit word on input
// I(i+1). It returns the decoded n-bit word at each output, keyed by
// output name.
func (g *Gate) Eval(words ...Word) (map[string]Word, error) {
	return g.EvalContext(context.Background(), nil, words...)
}

// EvalContext is Eval with cancellation and, when eng is non-nil,
// concurrent per-channel evaluation on the engine's task pool — each
// frequency channel is an independent phasor network, so an n-bit word
// fans out over n workers.
func (g *Gate) EvalContext(ctx context.Context, eng *engine.Engine, words ...Word) (map[string]Word, error) {
	names := g.Kind.InputNames()
	if len(words) != len(names) {
		return nil, fmt.Errorf("parallel: %w: %s needs %d input words, got %d",
			layout.ErrBadInputCount, g.Kind, len(names), len(words))
	}
	for i, w := range words {
		if len(w) != g.NBits() {
			return nil, fmt.Errorf("parallel: %w: input %s word has %d bits, gate has %d channels",
				layout.ErrBadInputCount, names[i], len(w), g.NBits())
		}
	}
	// Evaluate each channel into its own slot, then assemble the words —
	// per-channel work never touches shared state, so the fan-out is
	// race-free by construction.
	type channelOut struct {
		logic map[string]bool
	}
	initMetrics()
	mWords.Inc()
	outs := make([]channelOut, len(g.Channels))
	evalChannel := func(ctx context.Context, ci int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		mChannels.Inc()
		drives := map[string]complex128{}
		for ii, name := range names {
			drives[name] = phasor.Drive(words[ii][ci])
		}
		res, err := g.nets[ci].Evaluate(drives)
		if err != nil {
			return err
		}
		logic := make(map[string]bool, len(res))
		for name, v := range res {
			ref := g.refs[ci][name]
			if g.Kind == core.XOR {
				logic[name] = phasor.LogicFromThreshold(v, ref, 0.5, false)
			} else {
				logic[name] = phasor.LogicFromPhase(v, ref)
			}
		}
		outs[ci] = channelOut{logic: logic}
		return nil
	}
	if eng == nil {
		for ci := range g.Channels {
			if err := evalChannel(ctx, ci); err != nil {
				return nil, err
			}
		}
	} else if err := eng.Map(ctx, len(g.Channels), evalChannel); err != nil {
		return nil, err
	}
	out := map[string]Word{}
	for ci := range g.Channels {
		for name, logic := range outs[ci].logic {
			if _, ok := out[name]; !ok {
				out[name] = make(Word, g.NBits())
			}
			out[name][ci] = logic
		}
	}
	return out, nil
}

// channelAmplitude is exposed for diagnostics: the normalized magnitude
// of output `name` on channel ci for the given drive words.
func (g *Gate) channelAmplitude(words []Word, ci int, name string) (float64, error) {
	names := g.Kind.InputNames()
	drives := map[string]complex128{}
	for ii, n := range names {
		drives[n] = phasor.Drive(words[ii][ci])
	}
	res, err := g.nets[ci].Evaluate(drives)
	if err != nil {
		return 0, err
	}
	ref := g.refs[ci][name]
	if cmplx.Abs(ref) == 0 {
		return 0, nil
	}
	return cmplx.Abs(res[name]) / cmplx.Abs(ref), nil
}

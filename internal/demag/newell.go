// Package demag implements the full magnetostatic (demagnetization)
// interaction for a single-layer 2-D mesh: the cell-averaged Newell
// tensor (Newell, Williams & Dunlop, JGR 1993 — the same formulation
// OOMMF and MuMax3 use) evaluated by FFT convolution.
//
// The gate experiments default to the local thin-film approximation
// (internal/mag), which is accurate for the paper's 1 nm film; this
// package provides the exact interaction for validation and for
// geometries where the local approximation breaks down. The kernel is
// validated by exact identities (self-demag trace = 1, mutual trace = 0,
// dipole far field) and the FFT path is cross-checked against a direct
// O(N²) convolution.
package demag

import (
	"fmt"
	"math"
)

// newellF is Newell's f auxiliary function for the diagonal tensor
// elements, with limits handled for vanishing denominators.
func newellF(x, y, z float64) float64 {
	x = math.Abs(x)
	y = math.Abs(y)
	z = math.Abs(z)
	r := math.Sqrt(x*x + y*y + z*z)
	var s float64
	if xz := math.Hypot(x, z); xz > 0 && y > 0 {
		s += 0.5 * y * (z*z - x*x) * math.Asinh(y/xz)
	}
	if xy := math.Hypot(x, y); xy > 0 && z > 0 {
		s += 0.5 * z * (y*y - x*x) * math.Asinh(z/xy)
	}
	if x > 0 && y > 0 && z > 0 {
		s -= x * y * z * math.Atan(y*z/(x*r))
	}
	s += (1.0 / 6.0) * (2*x*x - y*y - z*z) * r
	return s
}

// newellG is Newell's g auxiliary function for the off-diagonal tensor
// elements.
func newellG(x, y, z float64) float64 {
	z = math.Abs(z)
	r := math.Sqrt(x*x + y*y + z*z)
	var s float64
	if xy := math.Hypot(x, y); xy > 0 && z > 0 {
		s += x * y * z * math.Asinh(z/xy)
	}
	if yz := math.Hypot(y, z); yz > 0 {
		s += (y / 6.0) * (3*z*z - y*y) * math.Asinh(x/yz)
	}
	if xz := math.Hypot(x, z); xz > 0 {
		s += (x / 6.0) * (3*z*z - x*x) * math.Asinh(y/xz)
	}
	if z > 0 && r > 0 {
		s -= (z * z * z / 6.0) * math.Atan(x*y/(z*r))
	}
	if y != 0 && r > 0 {
		s -= (z * y * y / 2.0) * math.Atan(x*z/(y*r))
	}
	if x != 0 && r > 0 {
		s -= (z * x * x / 2.0) * math.Atan(y*z/(x*r))
	}
	s -= x * y * r / 3.0
	return s
}

// secondDiff applies the second central difference of fn along all three
// axes around (X, Y, Z) with steps (dx, dy, dz): weights (1, −2, 1) per
// axis, 27 evaluations total.
func secondDiff(fn func(x, y, z float64) float64, X, Y, Z, dx, dy, dz float64) float64 {
	w := [3]float64{1, -2, 1}
	o := [3]float64{-1, 0, 1}
	var s float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				s += w[i] * w[j] * w[k] * fn(X+o[i]*dx, Y+o[j]*dy, Z+o[k]*dz)
			}
		}
	}
	return s
}

// Nxx returns the cell-averaged demag tensor element between two equal
// cuboid cells of size (dx, dy, dz) whose centers are separated by
// (X, Y, Z). The convention is H = −N·M for a uniformly magnetized cell
// (so Nxx(0,0,0) of a cube is 1/3).
func Nxx(X, Y, Z, dx, dy, dz float64) float64 {
	v := dx * dy * dz
	return -secondDiff(newellF, X, Y, Z, dx, dy, dz) / (4 * math.Pi * v)
}

// Nyy is Nxx with the x and y roles exchanged.
func Nyy(X, Y, Z, dx, dy, dz float64) float64 {
	return Nxx(Y, X, Z, dy, dx, dz)
}

// Nzz is Nxx with the x and z roles exchanged.
func Nzz(X, Y, Z, dx, dy, dz float64) float64 {
	return Nxx(Z, Y, X, dz, dy, dx)
}

// Nxy returns the xy off-diagonal element.
func Nxy(X, Y, Z, dx, dy, dz float64) float64 {
	v := dx * dy * dz
	return -secondDiff(newellG, X, Y, Z, dx, dy, dz) / (4 * math.Pi * v)
}

// TensorPoint bundles the four independent elements of a single-layer
// mesh (Nxz and Nyz vanish by the z → −z symmetry of equal-z cells).
type TensorPoint struct {
	XX, YY, ZZ, XY float64
}

// Tensor evaluates the tensor between cells separated by (X, Y) within
// one layer of thickness dz.
func Tensor(X, Y, dx, dy, dz float64) TensorPoint {
	return TensorPoint{
		XX: Nxx(X, Y, 0, dx, dy, dz),
		YY: Nyy(X, Y, 0, dx, dy, dz),
		ZZ: Nzz(X, Y, 0, dx, dy, dz),
		XY: Nxy(X, Y, 0, dx, dy, dz),
	}
}

// Validate sanity-checks a tensor point against the exact identities.
func (t TensorPoint) Validate(self bool) error {
	trace := t.XX + t.YY + t.ZZ
	want := 0.0
	if self {
		want = 1.0
	}
	if math.Abs(trace-want) > 1e-9 {
		return fmt.Errorf("demag: trace %g, want %g", trace, want)
	}
	return nil
}

package demag

import (
	"fmt"
	"math"

	"spinwave/internal/dsp"
	"spinwave/internal/grid"
	"spinwave/internal/units"
	"spinwave/internal/vec"
)

// Kernel is the precomputed demag interaction of a mesh, ready for FFT
// convolution. It implements mag.Source-style evaluation through AddInto.
type Kernel struct {
	mesh grid.Mesh
	ms   float64 // saturation magnetization, A/m

	// padded FFT grid (powers of two ≥ 2·N−1)
	px, py int
	// kernel spectra
	kxx, kyy, kzz, kxy []complex128
	// scratch buffers
	fx, fy, fz []complex128
}

// NewKernel precomputes the Newell tensor and its spectra for the mesh.
// The construction is O(P log P) with P the padded grid size; for the
// gate meshes of this repo it takes well under a second.
func NewKernel(mesh grid.Mesh, ms float64) (*Kernel, error) {
	if ms <= 0 {
		return nil, fmt.Errorf("demag: Ms %g must be positive", ms)
	}
	px := nextPow2(2*mesh.Nx - 1)
	py := nextPow2(2*mesh.Ny - 1)
	k := &Kernel{
		mesh: mesh, ms: ms,
		px: px, py: py,
		kxx: make([]complex128, px*py),
		kyy: make([]complex128, px*py),
		kzz: make([]complex128, px*py),
		kxy: make([]complex128, px*py),
		fx:  make([]complex128, px*py),
		fy:  make([]complex128, px*py),
		fz:  make([]complex128, px*py),
	}
	// Fill the kernel with circular (wrap-around) indexing: offset o in
	// [−(N−1), N−1] stored at (o+P) mod P.
	for oy := -(mesh.Ny - 1); oy <= mesh.Ny-1; oy++ {
		for ox := -(mesh.Nx - 1); ox <= mesh.Nx-1; ox++ {
			t := Tensor(float64(ox)*mesh.Dx, float64(oy)*mesh.Dy, mesh.Dx, mesh.Dy, mesh.Dz)
			idx := ((oy+py)%py)*px + (ox+px)%px
			k.kxx[idx] = complex(t.XX, 0)
			k.kyy[idx] = complex(t.YY, 0)
			k.kzz[idx] = complex(t.ZZ, 0)
			k.kxy[idx] = complex(t.XY, 0)
		}
	}
	for _, buf := range [][]complex128{k.kxx, k.kyy, k.kzz, k.kxy} {
		if err := fft2(buf, px, py, false); err != nil {
			return nil, err
		}
	}
	return k, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// fft2 performs an in-place 2-D FFT (inverse when inv) on a px×py grid
// stored row-major.
func fft2(a []complex128, px, py int, inv bool) error {
	do := dsp.FFT
	if inv {
		do = dsp.IFFT
	}
	// Rows.
	for y := 0; y < py; y++ {
		if err := do(a[y*px : (y+1)*px]); err != nil {
			return err
		}
	}
	// Columns.
	col := make([]complex128, py)
	for x := 0; x < px; x++ {
		for y := 0; y < py; y++ {
			col[y] = a[y*px+x]
		}
		if err := do(col); err != nil {
			return err
		}
		for y := 0; y < py; y++ {
			a[y*px+x] = col[y]
		}
	}
	return nil
}

// AddInto adds the demag field B = −µ0·Ms·(N ⊛ m) to B for the current
// magnetization m (unit vectors on region cells; zero elsewhere). It
// satisfies the mag field-term convention (Tesla).
func (k *Kernel) AddInto(m, B vec.Field) error {
	n := k.mesh.NCells()
	if len(m) != n || len(B) != n {
		return fmt.Errorf("demag: field size mismatch")
	}
	px, py := k.px, k.py
	clear3 := func() {
		for i := range k.fx {
			k.fx[i] = 0
			k.fy[i] = 0
			k.fz[i] = 0
		}
	}
	clear3()
	for y := 0; y < k.mesh.Ny; y++ {
		for x := 0; x < k.mesh.Nx; x++ {
			v := m[y*k.mesh.Nx+x]
			idx := y*px + x
			k.fx[idx] = complex(v.X, 0)
			k.fy[idx] = complex(v.Y, 0)
			k.fz[idx] = complex(v.Z, 0)
		}
	}
	if err := fft2(k.fx, px, py, false); err != nil {
		return err
	}
	if err := fft2(k.fy, px, py, false); err != nil {
		return err
	}
	if err := fft2(k.fz, px, py, false); err != nil {
		return err
	}
	// Spectral multiply: H = −N·M component-wise in k-space.
	for i := range k.fx {
		hx := k.kxx[i]*k.fx[i] + k.kxy[i]*k.fy[i]
		hy := k.kxy[i]*k.fx[i] + k.kyy[i]*k.fy[i]
		hz := k.kzz[i] * k.fz[i]
		k.fx[i] = hx
		k.fy[i] = hy
		k.fz[i] = hz
	}
	if err := fft2(k.fx, px, py, true); err != nil {
		return err
	}
	if err := fft2(k.fy, px, py, true); err != nil {
		return err
	}
	if err := fft2(k.fz, px, py, true); err != nil {
		return err
	}
	pref := -units.Mu0 * k.ms
	for y := 0; y < k.mesh.Ny; y++ {
		for x := 0; x < k.mesh.Nx; x++ {
			idx := y*px + x
			c := y*k.mesh.Nx + x
			B[c].X += pref * real(k.fx[idx])
			B[c].Y += pref * real(k.fy[idx])
			B[c].Z += pref * real(k.fz[idx])
		}
	}
	return nil
}

// DirectField computes the demag field by direct O(N²) summation — the
// reference implementation used to validate the FFT path and for tiny
// meshes.
func DirectField(mesh grid.Mesh, ms float64, m vec.Field, B vec.Field) error {
	if len(m) != mesh.NCells() || len(B) != mesh.NCells() {
		return fmt.Errorf("demag: field size mismatch")
	}
	pref := -units.Mu0 * ms
	for jy := 0; jy < mesh.Ny; jy++ {
		for jx := 0; jx < mesh.Nx; jx++ {
			var h vec.Vector
			for sy := 0; sy < mesh.Ny; sy++ {
				for sx := 0; sx < mesh.Nx; sx++ {
					src := m[sy*mesh.Nx+sx]
					if src == vec.Zero {
						continue
					}
					t := Tensor(float64(jx-sx)*mesh.Dx, float64(jy-sy)*mesh.Dy, mesh.Dx, mesh.Dy, mesh.Dz)
					h.X += t.XX*src.X + t.XY*src.Y
					h.Y += t.XY*src.X + t.YY*src.Y
					h.Z += t.ZZ * src.Z
				}
			}
			c := jy*mesh.Nx + jx
			B[c] = B[c].MAdd(pref, h)
		}
	}
	return nil
}

// EffectiveNzz returns the volume-averaged z demag factor of a uniformly
// z-magnetized full mesh — ≈1 for a wide thin film, smaller for narrow
// structures. Useful for quantifying how good the local thin-film
// approximation is for a given geometry.
func EffectiveNzz(mesh grid.Mesh) float64 {
	var sum float64
	// By symmetry, average Hz over all cells for uniform mz = 1:
	// Nzz_eff = (1/N) Σ_j Σ_s Nzz(r_j − r_s).
	// Compute via row of sums: total interaction per offset times the
	// number of index pairs with that offset.
	for oy := -(mesh.Ny - 1); oy <= mesh.Ny-1; oy++ {
		for ox := -(mesh.Nx - 1); ox <= mesh.Nx-1; ox++ {
			cnt := float64((mesh.Nx - abs(ox)) * (mesh.Ny - abs(oy)))
			sum += cnt * Nzz(float64(ox)*mesh.Dx, float64(oy)*mesh.Dy, 0, mesh.Dx, mesh.Dy, mesh.Dz)
		}
	}
	return sum / float64(mesh.NCells())
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

func init() {
	// Guard against accidental NaNs from the limit handling: a cube's
	// self term must be exactly 1/3.
	if d := math.Abs(Nxx(0, 0, 0, 1, 1, 1) - 1.0/3.0); d > 1e-9 {
		panic(fmt.Sprintf("demag: cube self term off by %g", d))
	}
}

package demag

import (
	"math"
	"testing"
	"testing/quick"

	"spinwave/internal/grid"
	"spinwave/internal/units"
	"spinwave/internal/vec"
)

func TestCubeSelfDemag(t *testing.T) {
	// A cube has Nxx = Nyy = Nzz = 1/3 exactly.
	for _, f := range []func(X, Y, Z, dx, dy, dz float64) float64{Nxx, Nyy, Nzz} {
		if got := f(0, 0, 0, 1e-9, 1e-9, 1e-9); math.Abs(got-1.0/3.0) > 1e-10 {
			t.Errorf("cube self term = %.12f, want 1/3", got)
		}
	}
	if got := Nxy(0, 0, 0, 1e-9, 1e-9, 1e-9); math.Abs(got) > 1e-12 {
		t.Errorf("cube self Nxy = %g, want 0", got)
	}
}

func TestThinCellSelfDemag(t *testing.T) {
	// A 5×5×1 nm cell is plate-like: Nzz dominates but is well below the
	// infinite-film value of 1.
	tp := Tensor(0, 0, 5e-9, 5e-9, 1e-9)
	if err := tp.Validate(true); err != nil {
		t.Fatal(err)
	}
	if !(tp.ZZ > 0.6 && tp.ZZ < 0.8) {
		t.Errorf("thin cell Nzz = %g, want ≈0.69", tp.ZZ)
	}
	if math.Abs(tp.XX-tp.YY) > 1e-12 {
		t.Errorf("square cell XX != YY: %g vs %g", tp.XX, tp.YY)
	}
}

// Property: the trace identity holds for arbitrary offsets — the sharpest
// single test of the Newell f/g implementation.
func TestTraceIdentity(t *testing.T) {
	dx, dy, dz := 5e-9, 4e-9, 1e-9
	f := func(ox, oy int8) bool {
		X := float64(ox%13) * dx
		Y := float64(oy%13) * dy
		tp := Tensor(X, Y, dx, dy, dz)
		self := X == 0 && Y == 0
		return tp.Validate(self) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestFarFieldMatchesDipole(t *testing.T) {
	dx, dy, dz := 5e-9, 5e-9, 1e-9
	v := dx * dy * dz
	// In-plane offset, z-magnetized: H = −Nzz·M must approach the dipole
	// field −V·M/(4π·R³) (θ = 90°).
	for _, cells := range []int{15, 25, 40} {
		R := float64(cells) * dx
		want := v / (4 * math.Pi * R * R * R)
		got := Nzz(R, 0, 0, dx, dy, dz)
		if math.Abs(got-want) > 0.01*want {
			t.Errorf("R=%d cells: Nzz = %.6g, dipole %.6g", cells, got, want)
		}
		// Along-axis for x-magnetized cells: Nxx(R,0,0) → −2V/(4πR³)
		// (field parallel to moment, factor −2).
		wantXX := -2 * v / (4 * math.Pi * R * R * R)
		gotXX := Nxx(R, 0, 0, dx, dy, dz)
		if math.Abs(gotXX-wantXX) > 0.01*math.Abs(wantXX) {
			t.Errorf("R=%d cells: Nxx = %.6g, dipole %.6g", cells, gotXX, wantXX)
		}
	}
}

func TestTensorSymmetries(t *testing.T) {
	dx, dy, dz := 5e-9, 4e-9, 1e-9
	a := Tensor(3*dx, 2*dy, dx, dy, dz)
	b := Tensor(-3*dx, 2*dy, dx, dy, dz)
	c := Tensor(3*dx, -2*dy, dx, dy, dz)
	// The second differences amplify last-ulp rounding of the corner
	// evaluations, so the parity holds to ~1e-10 rather than machine ε.
	const tol = 1e-9
	if math.Abs(a.XX-b.XX) > tol || math.Abs(a.ZZ-c.ZZ) > tol {
		t.Errorf("diagonal elements not even in offsets: %g %g", a.XX-b.XX, a.ZZ-c.ZZ)
	}
	// Nxy is odd in each in-plane offset.
	if math.Abs(a.XY+b.XY) > tol || math.Abs(a.XY+c.XY) > tol {
		t.Errorf("Nxy parity wrong: %g %g", a.XY+b.XY, a.XY+c.XY)
	}
}

func TestEffectiveNzzGrowsWithArea(t *testing.T) {
	small := EffectiveNzz(grid.MustMesh(8, 8, 5e-9, 5e-9, 1e-9))
	large := EffectiveNzz(grid.MustMesh(32, 32, 5e-9, 5e-9, 1e-9))
	if !(small < large && large < 1) {
		t.Errorf("Nzz_eff: small %g, large %g — want increasing toward 1", small, large)
	}
	// A 200 nm patch of 1 nm film: local approximation good to ~2%.
	if got := EffectiveNzz(grid.MustMesh(40, 40, 5e-9, 5e-9, 1e-9)); got < 0.97 {
		t.Errorf("Nzz_eff(200 nm patch) = %g, want > 0.97", got)
	}
}

func TestKernelValidation(t *testing.T) {
	mesh := grid.MustMesh(4, 4, 5e-9, 5e-9, 1e-9)
	if _, err := NewKernel(mesh, 0); err == nil {
		t.Error("zero Ms accepted")
	}
	k, err := NewKernel(mesh, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.AddInto(vec.NewField(3), vec.NewField(16)); err == nil {
		t.Error("mismatched field accepted")
	}
}

func TestFFTMatchesDirect(t *testing.T) {
	mesh := grid.MustMesh(9, 6, 5e-9, 4e-9, 1e-9) // non-power-of-two grid
	ms := 1.1e6
	k, err := NewKernel(mesh, ms)
	if err != nil {
		t.Fatal(err)
	}
	// Pseudo-random magnetization with some vacuum cells.
	m := vec.NewField(mesh.NCells())
	x := uint64(99)
	next := func() float64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return float64(x%2000)/1000 - 1
	}
	for i := range m {
		if i%11 == 3 {
			continue // vacuum
		}
		m[i] = vec.V(next(), next(), next()+1.2).Normalized()
	}
	bFFT := vec.NewField(mesh.NCells())
	if err := k.AddInto(m, bFFT); err != nil {
		t.Fatal(err)
	}
	bDir := vec.NewField(mesh.NCells())
	if err := DirectField(mesh, ms, m, bDir); err != nil {
		t.Fatal(err)
	}
	scale := units.Mu0 * ms
	for i := range bFFT {
		if d := bFFT[i].Sub(bDir[i]).Norm(); d > 1e-9*scale {
			t.Fatalf("cell %d: FFT %v vs direct %v", i, bFFT[i], bDir[i])
		}
	}
}

func TestUniformFilmField(t *testing.T) {
	// Uniformly z-magnetized film patch: the demag field at the center
	// approaches −µ0·Ms·ẑ as the patch grows; in-plane components vanish
	// by symmetry.
	mesh := grid.MustMesh(32, 32, 5e-9, 5e-9, 1e-9)
	ms := 1.1e6
	k, err := NewKernel(mesh, ms)
	if err != nil {
		t.Fatal(err)
	}
	m := vec.NewField(mesh.NCells())
	m.Fill(vec.UnitZ)
	B := vec.NewField(mesh.NCells())
	if err := k.AddInto(m, B); err != nil {
		t.Fatal(err)
	}
	center := mesh.Idx(16, 16)
	bz := B[center].Z
	want := -units.Mu0 * ms
	if math.Abs(bz-want) > 0.03*math.Abs(want) {
		t.Errorf("center Bz = %g, want ≈ %g (−µ0·Ms)", bz, want)
	}
	if math.Abs(B[center].X) > 1e-6 || math.Abs(B[center].Y) > 1e-6 {
		t.Errorf("center in-plane field not zero: %v", B[center])
	}
	// Edge cells feel a weaker demag field (flux closure).
	edge := mesh.Idx(0, 16)
	if !(math.Abs(B[edge].Z) < math.Abs(bz)) {
		t.Errorf("edge |Bz| = %g not below center %g", math.Abs(B[edge].Z), math.Abs(bz))
	}
}

func BenchmarkKernelConvolution64x64(b *testing.B) {
	mesh := grid.MustMesh(64, 64, 5e-9, 5e-9, 1e-9)
	k, err := NewKernel(mesh, 1.1e6)
	if err != nil {
		b.Fatal(err)
	}
	m := vec.NewField(mesh.NCells())
	m.Fill(vec.V(0.1, 0, 1).Normalized())
	B := vec.NewField(mesh.NCells())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.AddInto(m, B); err != nil {
			b.Fatal(err)
		}
	}
}

package ladder

import (
	"math"
	"testing"

	"spinwave/internal/core"
	"spinwave/internal/layout"
	"spinwave/internal/material"
)

func backend(t *testing.T) *Backend {
	t.Helper()
	b, err := NewBackend(layout.PaperSpec(), material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(layout.Spec{}); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestBuildStructure(t *testing.T) {
	l, err := Build(layout.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	// The ladder needs FOUR inputs (one replicated) — the defining
	// difference from the triangle gate.
	if got := len(l.Inputs()); got != 4 {
		t.Errorf("inputs = %d, want 4 (extra transducer)", got)
	}
	if got := len(l.Outputs()); got != 2 {
		t.Errorf("outputs = %d, want 2", got)
	}
	if _, err := l.NodeByName("I3R"); err != nil {
		t.Error("replica transducer missing")
	}
	// All node positions positive (rasterizable if ever needed).
	for _, n := range l.Nodes {
		if n.Pos.X < 0 || n.Pos.Y < 0 {
			t.Errorf("node %s at negative position %v", n.Name, n.Pos)
		}
	}
}

func TestPathsAreIntegerWavelengths(t *testing.T) {
	l, err := Build(layout.PaperSpec())
	if err != nil {
		t.Fatal(err)
	}
	paths := [][]string{
		{"I1", "JA", "JS", "KA", "O1"},
		{"I2", "JA", "JS", "KA", "O1"},
		{"I1", "JA", "JS", "JB", "KB", "O2"},
		{"I3", "KA", "O1"},
		{"I3R", "KB", "O2"},
	}
	for _, p := range paths {
		n, err := l.PathLengthInLambda(p...)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(n-math.Round(n)) > 1e-9 {
			t.Errorf("path %v = %.6f λ, not integer", p, n)
		}
	}
}

func TestLadderMajorityTruthTable(t *testing.T) {
	b := backend(t)
	tt, err := core.MajorityTruthTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if !tt.AllCorrect() {
		for _, c := range tt.Cases {
			if !c.Correct {
				t.Errorf("case %v: %+v", c.Inputs, c.Outputs)
			}
		}
	}
	if tt.Backend != "ladder-behavioral" {
		t.Errorf("backend = %s", tt.Backend)
	}
}

func TestLadderNeedsLevelCompensation(t *testing.T) {
	// Without the rung compensation the 2-vs-1 majority can misfire:
	// check that compensation = 1 (equal drive, like the triangle would
	// use) makes at least one output amplitude relationship worse —
	// specifically the I3-only wave becomes stronger than the paired
	// I1=I2 wave, inverting the {0,0,1}? No: it flips cases where
	// I1 = I2 ≠ I3 if I3's amplitude exceeds the pair's.
	b := backend(t)
	b.RungCompensation = 1.6 // exaggerated imbalance
	tt, err := core.MajorityTruthTable(b)
	if err != nil {
		t.Fatal(err)
	}
	if tt.AllCorrect() {
		t.Error("strong drive imbalance should break the ladder majority")
	}
}

func TestRunValidation(t *testing.T) {
	b := backend(t)
	if _, err := b.Run([]bool{true}); err == nil {
		t.Error("wrong input count accepted")
	}
	if b.Kind() != core.MAJ3 {
		t.Error("kind wrong")
	}
}

func TestOutputsUsableButAsymmetric(t *testing.T) {
	// Rail B passes one more junction than rail A, so O2 is slightly
	// weaker than O1 in absolute amplitude — a structural drawback of
	// the ladder that per-output normalization hides. Verify both are
	// nonzero and O2 ≤ O1.
	b := backend(t)
	out, err := b.Run([]bool{false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	if out["O1"].Amplitude <= 0 || out["O2"].Amplitude <= 0 {
		t.Fatal("dead outputs")
	}
	if out["O2"].Amplitude > out["O1"].Amplitude+1e-12 {
		t.Errorf("O2 (%g) stronger than O1 (%g)?", out["O2"].Amplitude, out["O1"].Amplitude)
	}
}

// Package ladder models the state-of-the-art baseline the paper compares
// against: the ladder-shape fan-out-of-2 Majority gate of refs [22,23].
//
// The ladder achieves fan-out of 2 by adding a second rail and an extra
// transducer that replicates one input (I3): rail A computes
// MAJ(I1, I2, I3) at O1, rail B receives the split I1⊕I2 wave through a
// rung plus the replicated input I3R and computes the same function at
// O2. Its costs relative to the triangle gate are exactly the ones the
// paper's §IV-D argues about:
//
//   - one extra exciting transducer (4 instead of 3 → 13.76 aJ vs
//     10.32 aJ, the 25% saving of Table III), and
//   - unequal effective excitation levels: the I1/I2 wave reaches each
//     output through a splitting rung (amplitude ×1/√2) while I3/I3R
//     arrive directly, so proper operation needs level compensation,
//     whereas the triangle excites all inputs equally.
package ladder

import (
	"fmt"
	"math"
	"math/cmplx"

	"spinwave/internal/core"
	"spinwave/internal/detect"
	"spinwave/internal/dispersion"
	"spinwave/internal/geom"
	"spinwave/internal/layout"
	"spinwave/internal/material"
	"spinwave/internal/phasor"
	"spinwave/internal/units"
)

// Build constructs the ladder-shape FO2 MAJ3 layout graph. Dimensions
// reuse the triangle Spec: arm lengths are D1 (input arms, rung) and D4
// (output stubs); rails are separated by HalfFrac·D3·2 like the triangle's
// Y-rail spacing. All signal paths are integer multiples of λ.
func Build(s layout.Spec) (*layout.Layout, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	d1, d4 := s.D1(), s.D4()
	// Rail separation = rung length, rounded up to a whole number of
	// wavelengths so rail B stays phase-aligned with rail A.
	rung := float64(rungN(s)) * s.Lambda
	sep := rung

	l := &layout.Layout{Name: "ladder-maj3-fo2", Lambda: s.Lambda, Width: s.Width}
	// Rail A (top): I1, I2 merge; body; rung split; I3 joins; O1.
	add := func(name string, kind layout.NodeKind, x, y float64) int {
		l.Nodes = append(l.Nodes, layout.Node{Name: name, Kind: kind, Pos: geom.P(x, y)})
		return len(l.Nodes) - 1
	}
	edge := func(from, to int, length float64) {
		l.Edges = append(l.Edges, layout.Edge{From: from, To: to, Length: length})
	}

	cosM := math.Cos(s.MergeDeg * math.Pi / 180)
	sinM := math.Sin(s.MergeDeg * math.Pi / 180)

	nI1 := add("I1", layout.Input, -d1*cosM, d1*sinM)
	nI2 := add("I2", layout.Input, -d1*cosM, -d1*sinM)
	nJA := add("JA", layout.Junction, 0, 0)
	nSplit := add("JS", layout.Junction, s.Body(), 0)
	nJB := add("JB", layout.Junction, s.Body(), -sep)
	nKA := add("KA", layout.Junction, s.Body()+d1, 0)
	nKB := add("KB", layout.Junction, s.Body()+d1, -sep)
	nI3 := add("I3", layout.Input, s.Body()+d1, d1)
	nI3R := add("I3R", layout.Input, s.Body()+d1, -sep-d1)
	nO1 := add("O1", layout.Output, s.Body()+d1+d4, 0)
	nO2 := add("O2", layout.Output, s.Body()+d1+d4, -sep)
	nT1 := add("T1", layout.Termination, s.Body()+d1+d4+s.Tail, 0)
	nT2 := add("T2", layout.Termination, s.Body()+d1+d4+s.Tail, -sep)

	edge(nI1, nJA, d1)
	edge(nI2, nJA, d1)
	edge(nJA, nSplit, s.Body())
	edge(nSplit, nKA, d1)   // rail A continuation
	edge(nSplit, nJB, rung) // rung down to rail B
	edge(nJB, nKB, d1)
	edge(nI3, nKA, d1)
	edge(nI3R, nKB, d1)
	edge(nKA, nO1, d4)
	edge(nKB, nO2, d4)
	edge(nO1, nT1, s.Tail)
	edge(nO2, nT2, s.Tail)

	shiftPositive(l, s.Margin)
	return l, nil
}

// rungN returns the rung length in λ: the smallest integer number of
// wavelengths at least as long as the rail separation.
func rungN(s layout.Spec) int {
	sep := 2 * s.HalfFrac * s.D3()
	return int(math.Ceil(sep/s.Lambda - 1e-9))
}

func shiftPositive(l *layout.Layout, margin float64) {
	minX, minY := math.Inf(1), math.Inf(1)
	for _, n := range l.Nodes {
		minX = math.Min(minX, n.Pos.X)
		minY = math.Min(minY, n.Pos.Y)
	}
	l.Translate(-minX+l.Width/2+margin, -minY+l.Width/2+margin)
}

// Backend evaluates the ladder gate with the behavioral phasor engine.
// It implements core.Backend with Kind() = MAJ3: Run takes the three
// logical inputs and drives the replica transducer I3R with the same
// level as I3 — the extra excitation the paper's energy comparison counts.
type Backend struct {
	L   *layout.Layout
	Net *phasor.Network
	// RungCompensation scales the I3/I3R drive amplitude to match the
	// rung-split I1⊕I2 wave (the "different energy levels" of §IV-D).
	// 1 means no compensation.
	RungCompensation float64
}

// NewBackend builds the behavioral ladder backend.
func NewBackend(spec layout.Spec, mat material.Params) (*Backend, error) {
	l, err := Build(spec)
	if err != nil {
		return nil, err
	}
	model, err := dispersion.New(mat, units.NM(1), dispersion.LocalDemag)
	if err != nil {
		return nil, err
	}
	k := units.WaveNumber(spec.Lambda)
	net, err := phasor.New(l, k, model.AttenuationLength(k))
	if err != nil {
		return nil, err
	}
	net.JunctionLoss = 0.9
	// The I1⊕I2 wave is halved in power by the rung split; driving the
	// direct inputs at 1/√2 amplitude restores the balance the majority
	// function needs. This is the level inequality the triangle avoids.
	return &Backend{L: l, Net: net, RungCompensation: 1 / math.Sqrt2}, nil
}

// Name implements core.Backend.
func (b *Backend) Name() string { return "ladder-behavioral" }

// Kind implements core.Backend.
func (b *Backend) Kind() core.GateKind { return core.MAJ3 }

// Run implements core.Backend.
func (b *Backend) Run(inputs []bool) (map[string]detect.Readout, error) {
	if len(inputs) != 3 {
		return nil, fmt.Errorf("ladder: need 3 inputs, got %d", len(inputs))
	}
	comp := complex(b.RungCompensation, 0)
	drives := map[string]complex128{
		"I1":  phasor.Drive(inputs[0]),
		"I2":  phasor.Drive(inputs[1]),
		"I3":  phasor.Drive(inputs[2]) * comp,
		"I3R": phasor.Drive(inputs[2]) * comp,
	}
	out, err := b.Net.Evaluate(drives)
	if err != nil {
		return nil, err
	}
	res := make(map[string]detect.Readout, len(out))
	for name, v := range out {
		res[name] = detect.Readout{Probe: name, Amplitude: cmplx.Abs(v), Phase: cmplx.Phase(v)}
	}
	return res, nil
}

// Package health is the numerical health monitor of the observability
// stack (DESIGN.md §12): a streaming invariant-watchdog engine that
// rides the LLG solver's StepObserver hook — the same zero-overhead-
// when-disabled pattern as internal/probe — and *judges* a run while it
// executes instead of merely recording it. The paper's gate logic is
// only valid in the linear forward-volume spin-wave regime, and the
// fan-out readout assumes the solver stayed numerically sane for the
// whole transient; the monitor turns both assumptions into checked
// invariants:
//
//   - magnetization-norm drift — max over material cells of ||m|²−1|
//     (renormalization should pin it to round-off; drift means a broken
//     stepper or corrupted state);
//   - NaN/Inf sentinel sweep — the first non-finite cell makes every
//     subsequent readout meaningless, so it is a critical alert the
//     moment it appears, not a post-mortem CheckFinite discovery;
//   - linear-regime amplitude bound — the in-plane precession amplitude
//     max|m_xy| must stay below the small-signal threshold, or the run
//     has left the linear regime the gate's phase logic is designed in
//     (the amplitude-saturation failure mode of Mahmoud et al.,
//     arXiv:2109.05219);
//   - amplitude saturation — a second, critical tier of the same bound:
//     max|m_xy| ≈ 1 means the magnetization has tipped fully out of the
//     perpendicular equilibrium, which is how a destabilized fixed-step
//     integrator fails under per-step renormalization (|m| stays 1, so
//     the norm and finiteness rules never see it);
//   - energy-budget drift — in a damped, undriven run the total
//     micromagnetic energy (internal/energy via mag.Evaluator) must be
//     non-increasing; growth signals numerical energy injection;
//   - adaptive-dt collapse — the observed inter-step dt shrinking far
//     below its initial value means the error controller is fighting a
//     stiff or blown-up state and the run will crawl forever;
//   - wall-clock stall watchdog — a background goroutine that alerts
//     when no integrator step has been committed for a configurable
//     wall-clock window (a wedged pool, a livelocked solver).
//
// Failed checks feed a debounced rule engine: a rule must fail on
// Debounce consecutive evaluations before it fires (NaN fires
// immediately), each rule fires at most once per run, and every alert
// fans out through all three observability channels — a journal "alert"
// event (validated by tools/journalcheck), the obs default registry
// (spinwave_health_alerts_total by rule and severity), and a slog
// warning stamped with the run ID. The per-run verdict aggregates the
// worst severity seen: Healthy, Degraded (warn) or Violated (critical);
// with Config.AbortOnCritical set the solver loop is asked to stop
// within one step of the first critical alert.
//
// The healthy path allocates nothing: ObserveStep does a handful of
// compares between cadences and one allocation-free field sweep per
// cadence, so attaching a monitor preserves the PR 3 zero-alloc
// stepping loop (pinned by a test, like probe.Recorder).
package health

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"spinwave/internal/grid"
	"spinwave/internal/journal"
	"spinwave/internal/mag"
	"spinwave/internal/vec"
)

// Severity ranks an alert.
type Severity int

const (
	// Info alerts are advisory; they do not change the run verdict.
	Info Severity = iota
	// Warn alerts degrade the run verdict: the result is suspect but the
	// run keeps going.
	Warn
	// Critical alerts violate the run verdict: the readout cannot be
	// trusted, and with AbortOnCritical the run is stopped.
	Critical
)

// String names the severity ("info", "warn", "critical").
func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Critical:
		return "critical"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Verdict is the per-run health outcome.
type Verdict int

const (
	// Healthy: no warn or critical alert fired.
	Healthy Verdict = iota
	// Degraded: at least one warn alert fired, none critical.
	Degraded
	// Violated: at least one critical alert fired.
	Violated
)

// String names the verdict ("healthy", "degraded", "violated").
func (v Verdict) String() string {
	switch v {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Violated:
		return "violated"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Rule names identify the invariant checks in alerts, journal events and
// metric labels.
const (
	// RuleNorm is the magnetization-norm drift check.
	RuleNorm = "norm_drift"
	// RuleFinite is the NaN/Inf sentinel sweep.
	RuleFinite = "non_finite"
	// RuleAmplitude is the linear-regime amplitude bound.
	RuleAmplitude = "linear_regime"
	// RuleSaturation is the critical tier of the amplitude bound: the
	// magnetization tipped (nearly) fully into the plane.
	RuleSaturation = "saturation"
	// RuleEnergy is the damped-run energy-drift check.
	RuleEnergy = "energy_drift"
	// RuleDt is the adaptive-dt collapse/underflow check.
	RuleDt = "dt_collapse"
	// RuleStall is the wall-clock stall watchdog.
	RuleStall = "stall"
)

// Config tunes a Monitor. The zero Config monitors nothing; callers
// enable it explicitly (core backends skip building a Monitor entirely
// when Enabled is false, so disabled health checks cost one nil check
// per step in the solver loop).
type Config struct {
	// Enabled switches monitoring on.
	Enabled bool
	// Every is the field-sweep cadence in committed steps (default 64):
	// norm, finiteness and amplitude are checked on one allocation-free
	// pass over the magnetization every Every steps, keeping the healthy-
	// path overhead within the E-OBS3 ≤3% budget.
	Every int
	// Debounce is how many consecutive failing evaluations a rule needs
	// before it fires (default 2). The NaN/Inf rule ignores it and fires
	// on the first failure — a non-finite cell never heals.
	Debounce int
	// NormDriftMax bounds ||m|²−1| per cell (default 1e-9; the solver
	// renormalizes after every accepted step, so drift above round-off
	// means corrupted state).
	NormDriftMax float64
	// AmplitudeMax bounds the in-plane precession amplitude
	// max √(mx²+my²) (default 0.5 — far beyond the small-signal regime
	// the 2 mT drive excites; tighten it to police a specific linearity
	// budget).
	AmplitudeMax float64
	// AmplitudeSeverity is the severity of the linear-regime rule
	// (default Info — advisory; raise it to police a strict linearity
	// budget). Saturation has its own always-critical rule below.
	AmplitudeSeverity Severity
	// SaturationMax is the critical amplitude tier (default 0.95):
	// max √(mx²+my²) beyond it means the magnetization left the
	// perpendicular equilibrium entirely — a blown-up integrator hidden
	// by per-step renormalization. Negative disables the rule.
	SaturationMax float64
	// EnergyEvery is the energy-drift cadence in steps (default 512,
	// matching the probe cadence; < 0 disables). The check only arms for
	// undriven runs (see Monitor options) — driven antennas legitimately
	// pump energy in.
	EnergyEvery int
	// EnergyDriftMax is the allowed relative growth of the total energy
	// over the first sample in a damped run (default 0.01).
	EnergyDriftMax float64
	// DtCollapseFactor flags an observed inter-step dt below
	// DtCollapseFactor × the first observed dt (default 1/50; only
	// adaptive runs ever shrink dt, so fixed-step runs never trip it).
	DtCollapseFactor float64
	// StallAfter is the wall-clock window with no committed step that
	// trips the stall watchdog (default 60s; ≤ 0 disables the watchdog
	// goroutine).
	StallAfter time.Duration
	// AbortOnCritical asks the driving loop to stop the run within one
	// step of the first critical alert (surfaced via Monitor.Err).
	AbortOnCritical bool
}

// WithDefaults returns the config with unset fields replaced by the
// documented defaults.
func (c Config) WithDefaults() Config {
	if c.Every < 1 {
		c.Every = 64
	}
	if c.Debounce < 1 {
		c.Debounce = 2
	}
	if c.NormDriftMax == 0 {
		c.NormDriftMax = 1e-9
	}
	if c.AmplitudeMax == 0 {
		c.AmplitudeMax = 0.5
	}
	if c.SaturationMax == 0 {
		c.SaturationMax = 0.95
	}
	if c.EnergyEvery == 0 {
		c.EnergyEvery = 512
	}
	if c.EnergyDriftMax == 0 {
		c.EnergyDriftMax = 0.01
	}
	if c.DtCollapseFactor == 0 {
		c.DtCollapseFactor = 1.0 / 50
	}
	if c.StallAfter == 0 {
		c.StallAfter = 60 * time.Second
	}
	return c
}

// Alert is one fired rule.
type Alert struct {
	// Rule is the invariant that fired (RuleNorm, RuleFinite, ...).
	Rule string `json:"rule"`
	// Severity is the alert severity ("info", "warn", "critical" in
	// JSON).
	Severity Severity `json:"-"`
	// SeverityName is the rendered severity for JSON consumers.
	SeverityName string `json:"severity"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Value is the measured quantity that broke the invariant.
	Value float64 `json:"value"`
	// Threshold is the configured bound it broke.
	Threshold float64 `json:"threshold"`
	// Step is the solver step at which the rule fired (0 for the stall
	// watchdog, which runs off the solver goroutine).
	Step int `json:"step"`
	// Time is the simulation time at the firing step, seconds.
	Time float64 `json:"t"`
}

// rule is the debounce state of one invariant.
type rule struct {
	name     string
	severity Severity
	debounce int // consecutive failures required
	fails    int // current consecutive-failure streak
	fired    bool
}

// Monitor evaluates the invariants against a running solver. It
// implements llg.StepObserver; ObserveStep is called on the solver
// goroutine and must stay allocation-free on the healthy path, while
// Verdict/Alerts/Err may be called concurrently from other goroutines.
type Monitor struct {
	cfg    Config
	region grid.Region
	ev     *mag.Evaluator // nil → energy rule disarmed
	driven bool           // sources present → energy rule disarmed
	runID  string
	ctx    context.Context // carries the run ID for slog correlation

	// Hot-path state, touched only by the solver goroutine.
	prevT    float64
	firstDt  float64
	baseE    float64 // first energy sample
	haveE    bool
	rules    [7]rule // indexed by the rIdx constants
	checks   int64
	lastStep atomic.Int64 // read by the stall watchdog

	// tripped flips once a critical alert fires; read lock-free by the
	// driving loop's abort poll.
	tripped atomic.Bool

	// mu guards the recorded alerts and the verdict aggregation, which
	// HTTP handlers and Finish read while the solver goroutine appends.
	mu      sync.Mutex
	alerts  []Alert
	worst   Severity
	any     bool
	stopped bool

	stopWatch chan struct{} // closes to stop the watchdog goroutine
	watchDone chan struct{}
}

// Rule indices into Monitor.rules.
const (
	rNorm = iota
	rFinite
	rAmp
	rSat
	rEnergy
	rDt
	rStall
)

// Option customizes NewMonitor beyond the config.
type Option func(*Monitor)

// WithEvaluator arms the energy-drift rule with the run's field
// evaluator (its EnergyBudget is allocation-free after Prepare).
func WithEvaluator(ev *mag.Evaluator) Option {
	return func(m *Monitor) { m.ev = ev }
}

// WithDriven marks the run as externally driven (antennas, thermal
// field): the energy-drift rule is disarmed, since sources legitimately
// inject energy.
func WithDriven(driven bool) Option {
	return func(m *Monitor) { m.driven = driven }
}

// NewMonitor builds a monitor for one run over the given material
// region. The run ID stamps every alert's journal event and log line.
func NewMonitor(cfg Config, region grid.Region, runID string, opts ...Option) *Monitor {
	cfg = cfg.WithDefaults()
	m := &Monitor{
		cfg:    cfg,
		region: region,
		runID:  runID,
		ctx:    journal.WithRunID(context.Background(), runID),
	}
	for _, o := range opts {
		o(m)
	}
	if m.ev != nil {
		m.ev.Prepare() // eager, so the first energy sweep never allocates
	}
	m.rules = [7]rule{
		rNorm:   {name: RuleNorm, severity: Critical, debounce: cfg.Debounce},
		rFinite: {name: RuleFinite, severity: Critical, debounce: 1},
		rAmp:    {name: RuleAmplitude, severity: cfg.AmplitudeSeverity, debounce: cfg.Debounce},
		rSat:    {name: RuleSaturation, severity: Critical, debounce: cfg.Debounce},
		rEnergy: {name: RuleEnergy, severity: Warn, debounce: cfg.Debounce},
		rDt:     {name: RuleDt, severity: Warn, debounce: cfg.Debounce},
		rStall:  {name: RuleStall, severity: Warn, debounce: 1},
	}
	initMetrics()
	if cfg.StallAfter > 0 {
		m.stopWatch = make(chan struct{})
		m.watchDone = make(chan struct{})
		go m.watch()
	}
	return m
}

// Config returns the monitor's effective (defaulted) configuration.
func (m *Monitor) Config() Config { return m.cfg }

// ObserveStep implements llg.StepObserver: it evaluates the streaming
// invariants for the committed step. Between cadences it costs a few
// compares and one atomic store; on a cadence step it runs one
// allocation-free sweep over the magnetization.
func (m *Monitor) ObserveStep(step int, t float64, mfield vec.Field) {
	m.lastStep.Store(int64(step))

	// dt tracking: the observed inter-step interval is the solver's
	// committed dt for both fixed and adaptive runs.
	if m.prevT > 0 || step > 1 {
		dt := t - m.prevT
		if m.firstDt == 0 && dt > 0 {
			m.firstDt = dt
		}
		if m.firstDt > 0 && !m.rules[rDt].fired {
			bound := m.cfg.DtCollapseFactor * m.firstDt
			if dt <= 0 || dt < bound {
				m.fail(rDt, step, t, dt, bound,
					"integrator step size collapsed (error controller fighting a stiff or blown-up state)")
			} else {
				m.pass(rDt)
			}
		}
	}
	m.prevT = t

	if step%m.cfg.Every == 0 {
		m.sweep(step, t, mfield)
	}
	if m.ev != nil && !m.driven && m.cfg.EnergyEvery > 0 && step%m.cfg.EnergyEvery == 0 {
		m.energyCheck(step, t, mfield)
	}
}

// sweep is the per-cadence field pass: norm drift, finiteness and the
// linear-regime amplitude bound in one loop, allocation-free.
func (m *Monitor) sweep(step int, t float64, mfield vec.Field) {
	m.checks++
	mChecks.Inc()
	worstNorm := 0.0 // max ||m|²−1|
	worstAmp2 := 0.0 // max mx²+my²
	finite := true
	for i := range mfield {
		if !m.region[i] {
			continue
		}
		v := mfield[i]
		n2 := v.X*v.X + v.Y*v.Y + v.Z*v.Z
		if math.IsNaN(n2) || math.IsInf(n2, 0) {
			finite = false
			break
		}
		if d := math.Abs(n2 - 1); d > worstNorm {
			worstNorm = d
		}
		if a2 := v.X*v.X + v.Y*v.Y; a2 > worstAmp2 {
			worstAmp2 = a2
		}
	}
	if !finite {
		m.fail(rFinite, step, t, math.NaN(), 0,
			"non-finite magnetization (solver blew up)")
		return // norm/amplitude are meaningless on a non-finite field
	}
	m.pass(rFinite)
	if worstNorm > m.cfg.NormDriftMax {
		m.fail(rNorm, step, t, worstNorm, m.cfg.NormDriftMax,
			"magnetization norm drifted off the unit sphere")
	} else {
		m.pass(rNorm)
	}
	amp := math.Sqrt(worstAmp2)
	if amp > m.cfg.AmplitudeMax {
		m.fail(rAmp, step, t, amp, m.cfg.AmplitudeMax,
			"precession amplitude left the linear small-signal regime")
	} else {
		m.pass(rAmp)
	}
	if m.cfg.SaturationMax > 0 {
		if amp > m.cfg.SaturationMax {
			m.fail(rSat, step, t, amp, m.cfg.SaturationMax,
				"magnetization tipped fully out of equilibrium (destabilized integrator)")
		} else {
			m.pass(rSat)
		}
	}
}

// energyCheck compares the total micromagnetic energy against the first
// sample: in a damped, undriven run it must not grow.
func (m *Monitor) energyCheck(step int, t float64, mfield vec.Field) {
	total := m.ev.EnergyBudget(mfield).Total()
	if math.IsNaN(total) || math.IsInf(total, 0) {
		return // the finiteness rule owns blown-up fields
	}
	if !m.haveE {
		m.baseE, m.haveE = total, true
		return
	}
	scale := math.Abs(m.baseE)
	if scale == 0 {
		scale = 1
	}
	growth := (total - m.baseE) / scale
	if growth > m.cfg.EnergyDriftMax {
		m.fail(rEnergy, step, t, growth, m.cfg.EnergyDriftMax,
			"energy grew in a damped run (numerical energy injection)")
	} else {
		m.pass(rEnergy)
	}
}

// pass resets a rule's consecutive-failure streak.
func (m *Monitor) pass(idx int) { m.rules[idx].fails = 0 }

// fail records one failing evaluation of a rule and fires the alert
// once the debounce threshold is met. Called on the solver goroutine
// (or the watchdog goroutine for rStall — the rules array is only
// touched concurrently for distinct indices).
func (m *Monitor) fail(idx, step int, t, value, threshold float64, msg string) {
	r := &m.rules[idx]
	if r.fired {
		return
	}
	r.fails++
	if r.fails < r.debounce {
		return
	}
	r.fired = true
	m.emit(Alert{
		Rule: r.name, Severity: r.severity, SeverityName: r.severity.String(),
		Message: msg, Value: value, Threshold: threshold, Step: step, Time: t,
	})
}

// emit fans one alert out to the journal, the metrics registry and the
// process logger, and folds it into the verdict. Alerts are rare and
// debounced, so allocating here does not violate the healthy-path
// zero-alloc contract.
func (m *Monitor) emit(a Alert) {
	m.mu.Lock()
	m.alerts = append(m.alerts, a)
	m.any = true
	if a.Severity > m.worst {
		m.worst = a.Severity
	}
	m.mu.Unlock()
	if a.Severity == Critical {
		m.tripped.Store(true)
	}

	alertCounter(a.Rule, a.Severity).Inc()
	journal.Default().Emit(m.runID, "alert",
		journal.F("rule", a.Rule),
		journal.F("severity", a.SeverityName),
		journal.F("message", a.Message),
		journal.F("value", a.Value),
		journal.F("threshold", a.Threshold),
		journal.F("step", a.Step))
	lvl := slog.LevelWarn
	if a.Severity == Critical {
		lvl = slog.LevelError
	}
	slog.Default().Log(m.ctx, lvl, "health alert",
		"rule", a.Rule, "severity", a.SeverityName, "value", a.Value,
		"threshold", a.Threshold, "step", a.Step, "msg", a.Message)
}

// watch is the stall watchdog goroutine: it fires when the committed
// step counter stops advancing for a full StallAfter window.
func (m *Monitor) watch() {
	defer close(m.watchDone)
	interval := m.cfg.StallAfter / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	last := m.lastStep.Load()
	stuck := time.Duration(0)
	for {
		select {
		case <-m.stopWatch:
			return
		case <-tick.C:
			now := m.lastStep.Load()
			if now != last {
				last, stuck = now, 0
				continue
			}
			stuck += interval
			if stuck >= m.cfg.StallAfter && !m.rules[rStall].fired {
				m.fail(rStall, int(now), 0, stuck.Seconds(), m.cfg.StallAfter.Seconds(),
					"no integrator step committed within the stall window")
			}
		}
	}
}

// Tripped reports whether a critical alert has fired — the driving
// loop's abort poll when AbortOnCritical is set (one atomic load).
func (m *Monitor) Tripped() bool { return m.tripped.Load() }

// ErrAborted is the sentinel wrapped by every abort error a Monitor
// returns under AbortOnCritical, so callers (and HTTP error mappers)
// can classify a health abort with errors.Is without string matching.
var ErrAborted = errors.New("health: run aborted by critical alert")

// Err returns the abort error when a critical alert fired under
// AbortOnCritical, else nil. The error wraps ErrAborted.
func (m *Monitor) Err() error {
	if !m.cfg.AbortOnCritical || !m.tripped.Load() {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, a := range m.alerts {
		if a.Severity == Critical {
			return fmt.Errorf("%w: run %s, critical %s alert at step %d: %s",
				ErrAborted, m.runID, a.Rule, a.Step, a.Message)
		}
	}
	return fmt.Errorf("%w: run %s", ErrAborted, m.runID)
}

// Verdict aggregates the alerts fired so far into the run verdict.
func (m *Monitor) Verdict() Verdict {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.verdictLocked()
}

func (m *Monitor) verdictLocked() Verdict {
	switch {
	case m.worst >= Critical:
		return Violated
	case m.worst >= Warn && m.any:
		return Degraded
	default:
		return Healthy
	}
}

// Alerts returns a copy of the alerts fired so far, in firing order.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// Checks returns the number of field-sweep evaluations performed.
func (m *Monitor) Checks() int64 { return m.checks }

// Report is the frozen outcome of a monitored run, published in the
// registry at Finish and scored by tools/swdoctor and the deep health
// endpoint.
type Report struct {
	// Run is the run ID.
	Run string `json:"run"`
	// Verdict is the rendered verdict ("healthy", "degraded",
	// "violated").
	Verdict string `json:"verdict"`
	// Alerts are the fired alerts in order.
	Alerts []Alert `json:"alerts,omitempty"`
	// Checks is the number of field sweeps evaluated.
	Checks int64 `json:"checks"`
	// Steps is the last committed solver step observed.
	Steps int64 `json:"steps"`
}

// Finish stops the watchdog, emits the per-run "health.verdict" journal
// event, folds the verdict into the metrics registry and publishes the
// report under the run ID. It is idempotent; the first call wins.
func (m *Monitor) Finish() Report {
	m.mu.Lock()
	if m.stopped {
		v := m.verdictLocked()
		rep := Report{Run: m.runID, Verdict: v.String(),
			Alerts: append([]Alert(nil), m.alerts...), Checks: m.checks, Steps: m.lastStep.Load()}
		m.mu.Unlock()
		return rep
	}
	m.stopped = true
	m.mu.Unlock()

	if m.stopWatch != nil {
		close(m.stopWatch)
		<-m.watchDone
	}
	m.mu.Lock()
	v := m.verdictLocked()
	rep := Report{Run: m.runID, Verdict: v.String(),
		Alerts: append([]Alert(nil), m.alerts...), Checks: m.checks, Steps: m.lastStep.Load()}
	m.mu.Unlock()

	verdictCounter(v).Inc()
	mLastVerdict.Set(float64(v))
	journal.Default().Emit(m.runID, "health.verdict",
		journal.F("verdict", rep.Verdict),
		journal.F("alerts", len(rep.Alerts)),
		journal.F("checks", rep.Checks))
	if v != Healthy {
		slog.Default().Log(m.ctx, slog.LevelWarn, "run health verdict",
			"verdict", rep.Verdict, "alerts", len(rep.Alerts))
	}
	Default().Put(rep)
	return rep
}

package health

import (
	"math"
	"strings"
	"testing"
	"time"

	"spinwave/internal/grid"
	"spinwave/internal/journal"
	"spinwave/internal/mag"
	"spinwave/internal/material"
	"spinwave/internal/obs"
	"spinwave/internal/vec"
)

// testConfig is a monitor config with the stall watchdog disabled and a
// per-step sweep cadence, so unit tests drive every rule synchronously.
func testConfig() Config {
	return Config{Enabled: true, Every: 1, StallAfter: -1}
}

// uniformField builds an n-cell field with every cell set to v.
func uniformField(n int, v vec.Vector) vec.Field {
	f := make(vec.Field, n)
	for i := range f {
		f[i] = v
	}
	return f
}

// fullRegion marks all n cells as material.
func fullRegion(n int) grid.Region {
	r := make(grid.Region, n)
	for i := range r {
		r[i] = true
	}
	return r
}

func TestSeverityAndVerdictStrings(t *testing.T) {
	if Info.String() != "info" || Warn.String() != "warn" || Critical.String() != "critical" {
		t.Error("severity names wrong")
	}
	if Healthy.String() != "healthy" || Degraded.String() != "degraded" || Violated.String() != "violated" {
		t.Error("verdict names wrong")
	}
}

func TestConfigWithDefaults(t *testing.T) {
	c := Config{}.WithDefaults()
	if c.Every != 64 || c.Debounce != 2 || c.NormDriftMax != 1e-9 {
		t.Errorf("sweep defaults wrong: %+v", c)
	}
	if c.AmplitudeMax != 0.5 || c.SaturationMax != 0.95 {
		t.Errorf("amplitude defaults wrong: %+v", c)
	}
	if c.EnergyEvery != 512 || c.EnergyDriftMax != 0.01 {
		t.Errorf("energy defaults wrong: %+v", c)
	}
	if c.DtCollapseFactor != 1.0/50 || c.StallAfter != 60*time.Second {
		t.Errorf("dt/stall defaults wrong: %+v", c)
	}
	// Explicit values survive; negative StallAfter (disabled) survives.
	c2 := Config{Every: 7, StallAfter: -1}.WithDefaults()
	if c2.Every != 7 || c2.StallAfter != -1 {
		t.Errorf("explicit values overridden: %+v", c2)
	}
}

// TestFiniteRuleFiresImmediately checks the NaN sweep ignores the
// debounce, trips the critical latch on the first sweep, and that Err
// surfaces the abort only under AbortOnCritical.
func TestFiniteRuleFiresImmediately(t *testing.T) {
	const n = 16
	f := uniformField(n, vec.Vector{Z: 1})
	f[5].X = math.NaN()

	m := NewMonitor(testConfig(), fullRegion(n), "rfinite")
	m.ObserveStep(1, 1e-12, f)
	if !m.Tripped() {
		t.Fatal("NaN field did not trip the monitor on the first sweep")
	}
	if v := m.Verdict(); v != Violated {
		t.Errorf("verdict %v, want Violated", v)
	}
	alerts := m.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != RuleFinite || alerts[0].Severity != Critical {
		t.Errorf("alerts %+v, want one critical %s", alerts, RuleFinite)
	}
	if err := m.Err(); err != nil {
		t.Errorf("Err without AbortOnCritical = %v, want nil", err)
	}
	m.Finish()

	cfg := testConfig()
	cfg.AbortOnCritical = true
	m2 := NewMonitor(cfg, fullRegion(n), "rfinite2")
	m2.ObserveStep(1, 1e-12, f)
	err := m2.Err()
	if err == nil || !strings.Contains(err.Error(), RuleFinite) {
		t.Errorf("Err with AbortOnCritical = %v, want non_finite abort", err)
	}
	m2.Finish()
}

// TestNormDriftDebounce checks the norm rule waits for Debounce
// consecutive failing sweeps and fires at most once.
func TestNormDriftDebounce(t *testing.T) {
	const n = 8
	drifted := uniformField(n, vec.Vector{Z: 1.001}) // ||m|²−1| ≈ 2e-3, amp 0

	m := NewMonitor(testConfig(), fullRegion(n), "rnorm")
	m.ObserveStep(1, 1e-12, drifted)
	if len(m.Alerts()) != 0 {
		t.Fatal("norm rule fired before the debounce threshold")
	}
	m.ObserveStep(2, 2e-12, drifted)
	alerts := m.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != RuleNorm || alerts[0].Severity != Critical {
		t.Fatalf("alerts %+v, want one critical %s", alerts, RuleNorm)
	}
	// Latched: further failing sweeps do not re-fire.
	m.ObserveStep(3, 3e-12, drifted)
	if len(m.Alerts()) != 1 {
		t.Error("norm rule fired twice for one run")
	}
	m.Finish()
}

// TestNormDebounceResets checks a healthy sweep between two failing
// ones resets the consecutive-failure streak.
func TestNormDebounceResets(t *testing.T) {
	const n = 8
	good := uniformField(n, vec.Vector{Z: 1})
	bad := uniformField(n, vec.Vector{Z: 1.001})

	m := NewMonitor(testConfig(), fullRegion(n), "rreset")
	m.ObserveStep(1, 1e-12, bad)
	m.ObserveStep(2, 2e-12, good) // streak resets
	m.ObserveStep(3, 3e-12, bad)
	if len(m.Alerts()) != 0 {
		t.Errorf("alerts %+v after interleaved healthy sweep, want none", m.Alerts())
	}
	m.Finish()
}

// TestAmplitudeTiers checks the two-tier amplitude rule: past
// AmplitudeMax fires the advisory linear-regime alert, past
// SaturationMax the critical saturation alert — the signature of a
// destabilized integrator hidden by per-step renormalization.
func TestAmplitudeTiers(t *testing.T) {
	const n = 8
	// amp 0.6, |m| = 1 exactly: only the linear-regime rule fails.
	tipped := uniformField(n, vec.Vector{X: 0.6, Z: 0.8})
	m := NewMonitor(testConfig(), fullRegion(n), "ramp")
	m.ObserveStep(1, 1e-12, tipped)
	m.ObserveStep(2, 2e-12, tipped)
	alerts := m.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != RuleAmplitude || alerts[0].Severity != Info {
		t.Fatalf("alerts %+v, want one info %s", alerts, RuleAmplitude)
	}
	if v := m.Verdict(); v != Healthy {
		t.Errorf("verdict %v after info alert, want Healthy", v)
	}
	m.Finish()

	// amp 0.98: both tiers fail; saturation is critical.
	sat := uniformField(n, vec.Vector{X: 0.98, Z: math.Sqrt(1 - 0.98*0.98)})
	m2 := NewMonitor(testConfig(), fullRegion(n), "rsat")
	m2.ObserveStep(1, 1e-12, sat)
	m2.ObserveStep(2, 2e-12, sat)
	if v := m2.Verdict(); v != Violated {
		t.Errorf("verdict %v after saturation, want Violated", v)
	}
	var rules []string
	for _, a := range m2.Alerts() {
		rules = append(rules, a.Rule)
	}
	if len(rules) != 2 || rules[0] != RuleAmplitude || rules[1] != RuleSaturation {
		t.Errorf("rules %v, want [%s %s]", rules, RuleAmplitude, RuleSaturation)
	}
	if !m2.Tripped() {
		t.Error("saturation did not trip the critical latch")
	}
	m2.Finish()
}

// TestDtCollapse drives the observed inter-step dt far below its first
// value and expects the warn-severity collapse alert after debounce.
func TestDtCollapse(t *testing.T) {
	const n = 4
	f := uniformField(n, vec.Vector{Z: 1})
	cfg := testConfig()
	cfg.Every = 1 << 20 // keep field sweeps out of the way

	m := NewMonitor(cfg, fullRegion(n), "rdt")
	m.ObserveStep(1, 1e-12, f) // establishes prevT
	m.ObserveStep(2, 2e-12, f) // firstDt = 1e-12
	m.ObserveStep(3, 2.001e-12, f)
	if len(m.Alerts()) != 0 {
		t.Fatal("dt rule fired before debounce")
	}
	m.ObserveStep(4, 2.002e-12, f)
	alerts := m.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != RuleDt || alerts[0].Severity != Warn {
		t.Fatalf("alerts %+v, want one warn %s", alerts, RuleDt)
	}
	if v := m.Verdict(); v != Degraded {
		t.Errorf("verdict %v after warn alert, want Degraded", v)
	}
	m.Finish()
}

// TestEnergyDrift arms the energy rule with a real field evaluator and
// feeds it a field whose exchange energy grows — in an undriven damped
// run that is numerical energy injection and must fire the warn alert.
func TestEnergyDrift(t *testing.T) {
	mesh := grid.MustMesh(8, 8, 2e-9, 2e-9, 1e-9)
	region := grid.FullRegion(mesh)
	ev, err := mag.NewEvaluator(mesh, region, material.FeCoB())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Every = 1 << 20 // isolate the energy rule
	cfg.EnergyEvery = 1
	m := NewMonitor(cfg, region, "renergy", WithEvaluator(ev), WithDriven(false))
	defer m.Finish()

	// Baseline: uniform out-of-plane state, minimal exchange energy.
	calm := uniformField(mesh.NCells(), vec.Vector{Z: 1})
	m.ObserveStep(1, 1e-12, calm)

	// A checkerboard of ±z has far higher exchange energy than uniform.
	rough := make(vec.Field, mesh.NCells())
	for i := range rough {
		if i%2 == 0 {
			rough[i] = vec.Vector{Z: 1}
		} else {
			rough[i] = vec.Vector{Z: -1}
		}
	}
	m.ObserveStep(2, 2e-12, rough)
	m.ObserveStep(3, 3e-12, rough) // debounce 2
	alerts := m.Alerts()
	if len(alerts) != 1 || alerts[0].Rule != RuleEnergy || alerts[0].Severity != Warn {
		t.Fatalf("alerts %+v, want one warn %s", alerts, RuleEnergy)
	}

	// A driven monitor must keep the rule disarmed on the same fields.
	md := NewMonitor(cfg, region, "rdriven", WithEvaluator(ev), WithDriven(true))
	defer md.Finish()
	md.ObserveStep(1, 1e-12, calm)
	md.ObserveStep(2, 2e-12, rough)
	md.ObserveStep(3, 3e-12, rough)
	if len(md.Alerts()) != 0 {
		t.Errorf("driven run fired energy alerts %+v", md.Alerts())
	}
}

// TestStallWatchdog starves the step counter and waits for the
// background watchdog to fire the stall alert.
func TestStallWatchdog(t *testing.T) {
	cfg := testConfig()
	cfg.StallAfter = 40 * time.Millisecond
	m := NewMonitor(cfg, fullRegion(4), "rstall")
	defer m.Finish()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if alerts := m.Alerts(); len(alerts) > 0 {
			if alerts[0].Rule != RuleStall || alerts[0].Severity != Warn {
				t.Fatalf("alerts %+v, want warn %s", alerts, RuleStall)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("stall watchdog never fired")
}

// TestFinishEmitsJournalAndRegistry checks the alert and verdict journal
// events (the schema tools/journalcheck validates), the metrics counter,
// and the report registry publication.
func TestFinishEmitsJournalAndRegistry(t *testing.T) {
	const n = 8
	f := uniformField(n, vec.Vector{Z: 1})
	f[0].Y = math.Inf(1)

	ring := journal.NewRingSink(16)
	defer journal.Default().Attach(ring)()
	before := obs.Default().Counter("spinwave_health_alerts_total",
		obs.L("rule", RuleFinite), obs.L("severity", "critical")).Value()

	m := NewMonitor(testConfig(), fullRegion(n), "rjournal")
	m.ObserveStep(1, 1e-12, f)
	rep := m.Finish()
	if rep.Verdict != "violated" || rep.Run != "rjournal" || len(rep.Alerts) != 1 {
		t.Errorf("report %+v, want violated rjournal with 1 alert", rep)
	}
	// Finish is idempotent: the second call returns the same verdict
	// without re-emitting.
	if again := m.Finish(); again.Verdict != rep.Verdict {
		t.Error("second Finish changed the verdict")
	}

	evs := ring.EventsFor("rjournal")
	var names []string
	for _, e := range evs {
		names = append(names, e.Name)
	}
	if len(evs) != 2 || evs[0].Name != "alert" || evs[1].Name != "health.verdict" {
		t.Fatalf("journal events %v, want [alert health.verdict]", names)
	}
	if evs[0].Fields["rule"] != RuleFinite || evs[0].Fields["severity"] != "critical" {
		t.Errorf("alert fields %+v", evs[0].Fields)
	}
	if evs[1].Fields["verdict"] != "violated" {
		t.Errorf("verdict fields %+v", evs[1].Fields)
	}

	after := obs.Default().Counter("spinwave_health_alerts_total",
		obs.L("rule", RuleFinite), obs.L("severity", "critical")).Value()
	if after != before+1 {
		t.Errorf("critical alert counter went %d -> %d, want +1", before, after)
	}

	got, ok := Default().Get("rjournal")
	if !ok || got.Verdict != "violated" {
		t.Errorf("registry report %+v ok=%v, want violated", got, ok)
	}
}

// TestHealthySweepZeroAlloc pins the healthy-path contract: a full
// field sweep on the cadence step allocates nothing, so an attached
// monitor preserves the zero-alloc stepping loop.
func TestHealthySweepZeroAlloc(t *testing.T) {
	const n = 256
	f := uniformField(n, vec.Vector{X: 1e-3, Z: math.Sqrt(1 - 1e-6)})
	m := NewMonitor(testConfig(), fullRegion(n), "ralloc")
	defer m.Finish()

	step := 0
	tNow := 0.0
	allocs := testing.AllocsPerRun(100, func() {
		step++
		tNow += 1e-12
		m.ObserveStep(step, tNow, f)
	})
	if allocs > 0 {
		t.Errorf("healthy ObserveStep allocates %g per step, want 0", allocs)
	}
}

// TestRegistryEviction checks the bounded report registry evicts
// oldest-first and serves lookups by run ID.
func TestRegistryEviction(t *testing.T) {
	r := NewRegistry(2)
	r.Put(Report{Run: "a", Verdict: "healthy"})
	r.Put(Report{Run: "b", Verdict: "degraded"})
	r.Put(Report{Run: "c", Verdict: "violated"})
	if _, ok := r.Get("a"); ok {
		t.Error("oldest report not evicted")
	}
	if got, ok := r.Get("c"); !ok || got.Verdict != "violated" {
		t.Errorf("Get(c) = %+v ok=%v", got, ok)
	}
	runs := r.Runs()
	if len(runs) != 2 {
		t.Errorf("Runs() = %v, want 2 entries", runs)
	}
	// Re-putting an existing run updates in place without eviction.
	r.Put(Report{Run: "c", Verdict: "healthy"})
	if got, _ := r.Get("c"); got.Verdict != "healthy" {
		t.Error("Put did not update existing run")
	}
	if _, ok := r.Get("b"); !ok {
		t.Error("update evicted an unrelated run")
	}
}

package health

import (
	"sync"

	"spinwave/internal/obs"
)

// Process-wide health metrics in the obs default registry, registered
// lazily on the first NewMonitor so importing the package alone exports
// nothing (same pattern as the llg solver metrics). Alert and verdict
// counters are per-label series created on first use through the
// registry's get-or-create accessors.
var (
	metricsOnce sync.Once

	mChecks      *obs.Counter
	mLastVerdict *obs.Gauge
)

func initMetrics() {
	metricsOnce.Do(func() {
		r := obs.Default()
		r.Describe("spinwave_health_checks_total", "health-monitor field sweeps evaluated across all runs")
		mChecks = r.Counter("spinwave_health_checks_total")
		r.Describe("spinwave_health_alerts_total", "health alerts fired, by rule and severity")
		r.Describe("spinwave_health_runs_total", "monitored runs finished, by verdict")
		r.Describe("spinwave_health_run_verdict", "verdict of the most recently finished monitored run (0 healthy, 1 degraded, 2 violated)")
		mLastVerdict = r.Gauge("spinwave_health_run_verdict")
	})
}

// alertCounter returns the per-rule/severity alert counter, registering
// the labeled series on first use.
func alertCounter(rule string, sev Severity) *obs.Counter {
	return obs.Default().Counter("spinwave_health_alerts_total",
		obs.L("rule", rule), obs.L("severity", sev.String()))
}

// verdictCounter returns the per-verdict finished-run counter.
func verdictCounter(v Verdict) *obs.Counter {
	return obs.Default().Counter("spinwave_health_runs_total",
		obs.L("verdict", v.String()))
}

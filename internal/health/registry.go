package health

import (
	"sync"
)

// Registry maps run IDs to their frozen health reports so serving
// layers (swserve's deep health check) and post-mortem tools
// (tools/swdoctor) can look up a run's verdict after it finishes. It
// retains a bounded number of runs, evicting the oldest — the same
// bounded-LRU discipline as the probe registry.
type Registry struct {
	mu    sync.Mutex
	cap   int
	order []string // insertion order, oldest first
	reps  map[string]Report
}

// NewRegistry builds a registry retaining at most capacity runs
// (capacity < 1 is clamped to 1).
func NewRegistry(capacity int) *Registry {
	if capacity < 1 {
		capacity = 1
	}
	return &Registry{cap: capacity, reps: make(map[string]Report, capacity)}
}

var defaultRegistry = NewRegistry(64)

// Default returns the process-wide registry monitored runs publish
// their reports into at Finish.
func Default() *Registry { return defaultRegistry }

// Put registers the report under its run ID, evicting the oldest run if
// the registry is full. Re-putting an existing ID replaces its report
// without consuming capacity.
func (g *Registry) Put(rep Report) {
	if rep.Run == "" {
		return
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if _, exists := g.reps[rep.Run]; !exists {
		if len(g.order) >= g.cap {
			oldest := g.order[0]
			g.order = g.order[1:]
			delete(g.reps, oldest)
		}
		g.order = append(g.order, rep.Run)
	}
	g.reps[rep.Run] = rep
}

// Get returns the report registered under the run ID.
func (g *Registry) Get(run string) (Report, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rep, ok := g.reps[run]
	return rep, ok
}

// Runs returns the retained run IDs, oldest first.
func (g *Registry) Runs() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]string, len(g.order))
	copy(out, g.order)
	return out
}

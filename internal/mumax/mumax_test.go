package mumax

import (
	"strings"
	"testing"

	"spinwave/internal/layout"
	"spinwave/internal/material"
	"spinwave/internal/units"
)

func testConfig(t *testing.T) ScriptConfig {
	t.Helper()
	l, err := layout.BuildMAJ3(layout.PaperSpec(), false)
	if err != nil {
		t.Fatal(err)
	}
	return ScriptConfig{
		Layout:   l,
		Mat:      material.FeCoB(),
		CellSize: units.NM(5),
		Freq:     units.GHz(10),
		B0:       2e-3,
		Duration: units.NS(5),
		Inputs:   map[string]bool{"I1": false, "I2": true, "I3": false},
	}
}

func TestScriptContainsSetup(t *testing.T) {
	s, err := Script(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"SetGridSize(",
		"SetCellSize(",
		"Msat = 1.1e+06",
		"Aex = 1.85e-11",
		"alpha = 0.004",
		"Ku1 = 832000",
		"AnisU = vector(0, 0, 1)",
		"SetGeom(wg)",
		"relax()",
		"TableAutosave(",
		"Run(5e-09)",
		"SaveAs(m, \"final\")",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("script missing %q", want)
		}
	}
}

func TestScriptPhaseEncoding(t *testing.T) {
	s, err := Script(testConfig(t))
	if err != nil {
		t.Fatal(err)
	}
	// I2 = logic 1 → phase π ≈ 3.1415927 in its drive expression.
	if !strings.Contains(s, "3.1415927") {
		t.Error("logic-1 input phase π missing")
	}
	// Three input regions + two output probe regions.
	if got := strings.Count(s, "DefRegion("); got != 5 {
		t.Errorf("DefRegion count = %d, want 5", got)
	}
	if got := strings.Count(s, "TableAdd(m.Region("); got != 2 {
		t.Errorf("probe TableAdd count = %d, want 2", got)
	}
	if got := strings.Count(s, "B_ext.SetRegion("); got != 3 {
		t.Errorf("antenna count = %d, want 3", got)
	}
}

func TestScriptGeometryArms(t *testing.T) {
	c := testConfig(t)
	s, err := Script(c)
	if err != nil {
		t.Fatal(err)
	}
	// One cuboid per edge.
	if got := strings.Count(s, "cuboid("); got != len(c.Layout.Edges) {
		t.Errorf("cuboid count = %d, want %d", got, len(c.Layout.Edges))
	}
}

func TestScriptValidation(t *testing.T) {
	c := testConfig(t)
	c.Layout = nil
	if _, err := Script(c); err == nil {
		t.Error("nil layout accepted")
	}
	c = testConfig(t)
	c.B0 = 0
	if _, err := Script(c); err == nil {
		t.Error("zero field accepted")
	}
	c = testConfig(t)
	c.Inputs = map[string]bool{"O1": true}
	if _, err := Script(c); err == nil {
		t.Error("driving an output accepted")
	}
	c = testConfig(t)
	c.Inputs = map[string]bool{"nope": true}
	if _, err := Script(c); err == nil {
		t.Error("unknown input accepted")
	}
}

const sampleTable = `# t (s)	mx ()	my ()	mz ()	m.region1x ()	m.region1y ()	m.region1z ()
0 0.001 0 0.99 0.002 0 0.98
1e-11 0.002 0.001 0.99 0.003 0.001 0.98
2e-11 0.003 0.002 0.99 0.004 0.002 0.98
`

func TestParseTable(t *testing.T) {
	tab, err := ParseTable(strings.NewReader(sampleTable))
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 7 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	if len(tab.Data) != 3 {
		t.Fatalf("rows = %d", len(tab.Data))
	}
	ts, err := tab.Column("t (s)")
	if err != nil {
		t.Fatal(err)
	}
	if ts[2] != 2e-11 {
		t.Errorf("t[2] = %g", ts[2])
	}
	// Prefix match works for region columns.
	mx, err := tab.Column("m.region1x")
	if err != nil {
		t.Fatal(err)
	}
	if mx[0] != 0.002 {
		t.Errorf("region mx[0] = %g", mx[0])
	}
	if _, err := tab.Column("nonexistent"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestParseTableErrors(t *testing.T) {
	if _, err := ParseTable(strings.NewReader("")); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := ParseTable(strings.NewReader("# a\tb\n1 x\n")); err == nil {
		t.Error("bad value accepted")
	}
	if _, err := ParseTable(strings.NewReader("# a\tb\n1 2 3\n")); err == nil {
		t.Error("column count mismatch accepted")
	}
}

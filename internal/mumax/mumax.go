// Package mumax is the bridge to the real MuMax3 toolchain the paper
// used: it generates ready-to-run .mx3 scripts for every gate experiment
// (geometry, material, phase-encoded excitation, probes) and parses
// MuMax3 table output, so anyone with a GPU can re-validate this repo's
// in-Go solver against the paper's original simulator.
package mumax

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"spinwave/internal/layout"
	"spinwave/internal/material"
)

// ScriptConfig describes one MuMax3 run.
type ScriptConfig struct {
	Layout   *layout.Layout
	Mat      material.Params
	CellSize float64 // m
	Freq     float64 // Hz
	B0       float64 // T
	Duration float64 // s
	// Inputs maps input node names to logic levels (phase 0 or π).
	Inputs map[string]bool
	// TableAutosave is the table sampling interval, s.
	TableAutosave float64
}

// Validate checks the configuration.
func (c ScriptConfig) Validate() error {
	if c.Layout == nil {
		return fmt.Errorf("mumax: nil layout")
	}
	if err := c.Mat.Validate(); err != nil {
		return err
	}
	if c.CellSize <= 0 || c.Freq <= 0 || c.B0 <= 0 || c.Duration <= 0 {
		return fmt.Errorf("mumax: cell size, frequency, field and duration must be positive")
	}
	for name := range c.Inputs {
		idx, err := c.Layout.NodeByName(name)
		if err != nil {
			return err
		}
		if c.Layout.Nodes[idx].Kind != layout.Input {
			return fmt.Errorf("mumax: node %q is not an input", name)
		}
	}
	return nil
}

// Script renders the .mx3 program.
func Script(c ScriptConfig) (string, error) {
	if err := c.Validate(); err != nil {
		return "", err
	}
	l := c.Layout
	mesh, err := l.Mesh(c.CellSize, 1e-9)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// Auto-generated MuMax3 script for %s\n", l.Name)
	fmt.Fprintf(&b, "// Reproduction of \"Fan-out of 2 Triangle Shape Spin Wave Logic Gates\" (DATE 2021)\n\n")
	fmt.Fprintf(&b, "SetGridSize(%d, %d, 1)\n", mesh.Nx, mesh.Ny)
	fmt.Fprintf(&b, "SetCellSize(%.6g, %.6g, %.6g)\n\n", mesh.Dx, mesh.Dy, mesh.Dz)

	fmt.Fprintf(&b, "// %s\n", c.Mat.Name)
	fmt.Fprintf(&b, "Msat = %.6g\n", c.Mat.Ms)
	fmt.Fprintf(&b, "Aex = %.6g\n", c.Mat.Aex)
	fmt.Fprintf(&b, "alpha = %.6g\n", c.Mat.Alpha)
	if c.Mat.Ku1 != 0 {
		fmt.Fprintf(&b, "Ku1 = %.6g\n", c.Mat.Ku1)
		fmt.Fprintf(&b, "AnisU = vector(%g, %g, %g)\n", c.Mat.AnisU.X, c.Mat.AnisU.Y, c.Mat.AnisU.Z)
	}
	b.WriteString("\n// Geometry: union of waveguide arms (cuboids) with rounded junctions\n")
	// MuMax3 coordinates are centered on the grid; layout coordinates
	// start at the mesh corner.
	cx, cy := mesh.SizeX()/2, mesh.SizeY()/2
	b.WriteString("wg := cylinder(0, 0) // empty seed replaced below\n")
	first := true
	for i, e := range l.Edges {
		a, bb := l.Nodes[e.From].Pos, l.Nodes[e.To].Pos
		mx, my := (a.X+bb.X)/2-cx, (a.Y+bb.Y)/2-cy
		length := math.Hypot(bb.X-a.X, bb.Y-a.Y)
		angle := math.Atan2(bb.Y-a.Y, bb.X-a.X)
		expr := fmt.Sprintf("cuboid(%.6g, %.6g, %.6g).RotZ(%.8g).Transl(%.6g, %.6g, 0)",
			length, l.Width, mesh.Dz, angle, mx, my)
		if first {
			fmt.Fprintf(&b, "wg = %s\n", expr)
			first = false
		} else {
			fmt.Fprintf(&b, "wg = wg.Add(%s) // arm %d\n", expr, i)
		}
	}
	for _, n := range l.Nodes {
		if n.Kind == layout.Junction {
			fmt.Fprintf(&b, "wg = wg.Add(cylinder(%.6g, %.6g).Transl(%.6g, %.6g, 0)) // junction %s\n",
				l.Width, mesh.Dz, n.Pos.X-cx, n.Pos.Y-cy, n.Name)
		}
	}
	b.WriteString("SetGeom(wg)\n\n")
	b.WriteString("m = uniform(0, 0, 1) // perpendicular ground state\n")
	b.WriteString("relax()\n\n")

	b.WriteString("// Phase-encoded input antennas (logic 0 -> phase 0, logic 1 -> phase pi)\n")
	region := 1
	names := make([]string, 0, len(c.Inputs))
	for name := range c.Inputs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		level := c.Inputs[name]
		idx, _ := l.NodeByName(name)
		n := l.Nodes[idx]
		phase := 0.0
		if level {
			phase = math.Pi
		}
		fmt.Fprintf(&b, "DefRegion(%d, cylinder(%.6g, %.6g).Transl(%.6g, %.6g, 0)) // %s\n",
			region, l.Width, mesh.Dz, n.Pos.X-cx, n.Pos.Y-cy, name)
		fmt.Fprintf(&b, "B_ext.SetRegion(%d, vector(%.6g*sin(2*pi*%.6g*t+%.8g), 0, 0))\n",
			region, c.B0, c.Freq, phase)
		region++
	}
	b.WriteString("\n// Output probes: average magnetization of detector regions\n")
	for _, oi := range l.Outputs() {
		n := l.Nodes[oi]
		fmt.Fprintf(&b, "DefRegion(%d, cylinder(%.6g, %.6g).Transl(%.6g, %.6g, 0)) // %s\n",
			region, l.Width, mesh.Dz, n.Pos.X-cx, n.Pos.Y-cy, n.Name)
		fmt.Fprintf(&b, "TableAdd(m.Region(%d))\n", region)
		region++
	}
	autosave := c.TableAutosave
	if autosave <= 0 {
		autosave = 1 / (40 * c.Freq)
	}
	fmt.Fprintf(&b, "\nTableAutosave(%.6g)\n", autosave)
	fmt.Fprintf(&b, "Run(%.6g)\n", c.Duration)
	b.WriteString("SaveAs(m, \"final\")\n")
	return b.String(), nil
}

// Table is parsed MuMax3 table.txt content.
type Table struct {
	Columns []string
	Data    [][]float64 // Data[row][col]
}

// ParseTable reads a MuMax3 table.txt stream: a '#'-prefixed header line
// with tab-separated column names followed by whitespace-separated
// numeric rows.
func ParseTable(r io.Reader) (*Table, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	t := &Table{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if t.Columns == nil {
				for _, col := range strings.Split(strings.TrimPrefix(line, "#"), "\t") {
					col = strings.TrimSpace(col)
					if col != "" {
						t.Columns = append(t.Columns, col)
					}
				}
			}
			continue
		}
		fields := strings.Fields(line)
		row := make([]float64, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				return nil, fmt.Errorf("mumax: bad value %q: %w", f, err)
			}
			row[i] = v
		}
		if t.Columns != nil && len(row) != len(t.Columns) {
			return nil, fmt.Errorf("mumax: row has %d values, header %d columns", len(row), len(t.Columns))
		}
		t.Data = append(t.Data, row)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mumax: %w", err)
	}
	if len(t.Data) == 0 {
		return nil, fmt.Errorf("mumax: empty table")
	}
	return t, nil
}

// Column returns the values of the named column.
func (t *Table) Column(name string) ([]float64, error) {
	for i, c := range t.Columns {
		if c == name || strings.HasPrefix(c, name) {
			out := make([]float64, len(t.Data))
			for r, row := range t.Data {
				out[r] = row[i]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("mumax: no column %q (have %v)", name, t.Columns)
}

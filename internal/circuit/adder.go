package circuit

import (
	"fmt"
)

// AdderStyle selects how an adder's gates provide the fan-out its wiring
// needs.
type AdderStyle int

const (
	// TriangleFO2 uses this work's fan-out-of-2 triangle gates: the two
	// copies of each carry come for free from the gate structure.
	TriangleFO2 AdderStyle = iota
	// LadderFO2 uses the baseline ladder-shape FO2 gates of [22,23].
	LadderFO2
	// SingleWithRepeaters uses single-output gates; every signal needed
	// twice passes a directional coupler [36] followed by two repeaters
	// [37], each costing one ME excitation.
	SingleWithRepeaters
)

// String names the style.
func (s AdderStyle) String() string {
	switch s {
	case TriangleFO2:
		return "triangle-fo2"
	case LadderFO2:
		return "ladder-fo2"
	case SingleWithRepeaters:
		return "single+repeaters"
	default:
		return fmt.Sprintf("AdderStyle(%d)", int(s))
	}
}

// FullAdder builds a 1-bit full adder: sum = a⊕b⊕cin computed by two
// cascaded XOR gates and carry = MAJ3(a, b, cin) — the carry-out is a
// 3-input majority, the paper's §II-B flagship use case. The carry-out
// copies appear on nets "cout" and "cout2".
func FullAdder(style AdderStyle) (*Netlist, error) {
	n := NewNetlist("full-adder-"+style.String(), "a", "b", "cin")
	if err := addFullAdderStage(n, style, "a", "b", "cin", "cin", "sum", "cout", "cout2"); err != nil {
		return nil, err
	}
	n.MarkOutput("sum", "cout")
	return n, nil
}

// addFullAdderStage wires one full-adder bit. The two carry-in nets
// cinMaj and cinXor are the two copies of the incoming carry (equal for
// primary inputs); sum, cout and cout2 name the produced nets.
func addFullAdderStage(n *Netlist, style AdderStyle, a, b Net, cinMaj, cinXor Net, sum, cout, cout2 Net) error {
	t1 := sum + ".t1"
	switch style {
	case TriangleFO2:
		if err := n.Add(XOR(), []Net{a, b}, []Net{t1, ""}); err != nil {
			return err
		}
		if err := n.Add(XOR(), []Net{t1, cinXor}, []Net{sum, ""}); err != nil {
			return err
		}
		return n.Add(MAJ3(), []Net{a, b, cinMaj}, []Net{cout, cout2})
	case LadderFO2:
		if err := n.Add(LadderXOR(), []Net{a, b}, []Net{t1, ""}); err != nil {
			return err
		}
		if err := n.Add(LadderXOR(), []Net{t1, cinXor}, []Net{sum, ""}); err != nil {
			return err
		}
		return n.Add(LadderMAJ3(), []Net{a, b, cinMaj}, []Net{cout, cout2})
	case SingleWithRepeaters:
		if err := n.Add(XORSingle(), []Net{a, b}, []Net{t1}); err != nil {
			return err
		}
		if err := n.Add(XORSingle(), []Net{t1, cinXor}, []Net{sum}); err != nil {
			return err
		}
		// Single-output MAJ followed by a coupler and two repeaters to
		// regenerate the two carry copies.
		raw := cout + ".raw"
		s1, s2 := cout+".s1", cout+".s2"
		if err := n.Add(MAJ3Single(), []Net{a, b, cinMaj}, []Net{raw}); err != nil {
			return err
		}
		if err := n.Add(Splitter{Ways: 2}, []Net{raw}, []Net{s1, s2}); err != nil {
			return err
		}
		if err := n.Add(Repeater{}, []Net{s1}, []Net{cout}); err != nil {
			return err
		}
		return n.Add(Repeater{}, []Net{s2}, []Net{cout2})
	default:
		return fmt.Errorf("circuit: unknown adder style %d", int(style))
	}
}

// RippleCarryAdder builds an n-bit ripple-carry adder. With FO2 gates the
// two consumers of each carry (the next stage's MAJ and XOR) are fed by
// the gate's two outputs directly — no replication, which is the energy
// argument of the paper's introduction. Primary inputs a[i], b[i] are
// each consumed twice, which assumes the previous pipeline stage produces
// them with fan-out 2 as well (check with CheckFanOut(2)).
func RippleCarryAdder(bits int, style AdderStyle) (*Netlist, error) {
	if bits < 1 {
		return nil, fmt.Errorf("circuit: adder needs at least 1 bit, got %d", bits)
	}
	var inputs []Net
	for i := 0; i < bits; i++ {
		inputs = append(inputs, Net(fmt.Sprintf("a%d", i)), Net(fmt.Sprintf("b%d", i)))
	}
	inputs = append(inputs, "cin")
	n := NewNetlist(fmt.Sprintf("rca%d-%s", bits, style), inputs...)

	cinMaj, cinXor := Net("cin"), Net("cin")
	for i := 0; i < bits; i++ {
		a := Net(fmt.Sprintf("a%d", i))
		b := Net(fmt.Sprintf("b%d", i))
		sum := Net(fmt.Sprintf("sum%d", i))
		cout := Net(fmt.Sprintf("c%d", i+1))
		cout2 := cout + "_2"
		if err := addFullAdderStage(n, style, a, b, cinMaj, cinXor, sum, cout, cout2); err != nil {
			return nil, err
		}
		n.MarkOutput(sum)
		cinMaj, cinXor = cout, cout2
	}
	n.MarkOutput(cinMaj)
	return n, nil
}

// AdderComparison summarizes cost metrics of one adder build.
type AdderComparison struct {
	Style    AdderStyle
	Bits     int
	Gates    int
	EnergyAJ float64
	DelayNS  float64
}

// CompareAdders builds the n-bit ripple adder in all three styles and
// reports gate count, energy and critical delay — the circuit-level
// version of the paper's Table III argument.
func CompareAdders(bits int) ([]AdderComparison, error) {
	var out []AdderComparison
	for _, style := range []AdderStyle{TriangleFO2, LadderFO2, SingleWithRepeaters} {
		n, err := RippleCarryAdder(bits, style)
		if err != nil {
			return nil, err
		}
		d, err := n.CriticalDelay()
		if err != nil {
			return nil, err
		}
		out = append(out, AdderComparison{
			Style:    style,
			Bits:     bits,
			Gates:    n.NumGates(),
			EnergyAJ: n.Energy() / 1e-18,
			DelayNS:  d / 1e-9,
		})
	}
	return out, nil
}

package circuit

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestInverter(t *testing.T) {
	inv := Inverter{}
	out, err := inv.Eval([]bool{true})
	if err != nil || out[0] {
		t.Errorf("¬1 = %v, %v", out, err)
	}
	out, err = inv.Eval([]bool{false})
	if err != nil || !out[0] {
		t.Errorf("¬0 = %v, %v", out, err)
	}
	if _, err := inv.Eval(nil); err == nil {
		t.Error("bad arity accepted")
	}
	if inv.Energy() != 0 || inv.Delay() != 0 {
		t.Error("inverter should be passive")
	}
}

func TestParityTreeValidation(t *testing.T) {
	if _, err := ParityTree(1); err == nil {
		t.Error("1-input parity accepted")
	}
}

func TestParityTreeExhaustive(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		nl, err := ParityTree(n)
		if err != nil {
			t.Fatal(err)
		}
		outNet, err := ParityOutput(nl)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 1<<n; v++ {
			assign := map[Net]bool{}
			parity := false
			for i := 0; i < n; i++ {
				bit := v&(1<<i) != 0
				assign[Net(fmt.Sprintf("in%d", i))] = bit
				parity = parity != bit
			}
			out, err := nl.Evaluate(assign)
			if err != nil {
				t.Fatal(err)
			}
			if out[outNet] != parity {
				t.Fatalf("parity%d(%0*b) = %v, want %v", n, n, v, out[outNet], parity)
			}
		}
	}
}

func TestParityTreeCosts(t *testing.T) {
	nl, err := ParityTree(8)
	if err != nil {
		t.Fatal(err)
	}
	// 8 inputs → 7 XOR gates, 7·6.88 aJ.
	if nl.NumGates() != 7 {
		t.Errorf("gates = %d, want 7", nl.NumGates())
	}
	if got := nl.Energy() / 1e-18; got < 48 || got > 49 {
		t.Errorf("energy = %g aJ, want ≈48.2", got)
	}
	d, err := nl.CriticalDelay()
	if err != nil {
		t.Fatal(err)
	}
	// Balanced tree of 8: depth 3 stages.
	if got := d / 0.42e-9; got < 2.99 || got > 3.01 {
		t.Errorf("depth = %g stages, want 3", got)
	}
}

func TestTMRVoter(t *testing.T) {
	nl, err := TMRVoter()
	if err != nil {
		t.Fatal(err)
	}
	f := func(m0, m1, m2 bool) bool {
		out, err := nl.Evaluate(map[Net]bool{"m0": m0, "m1": m1, "m2": m2})
		if err != nil {
			return false
		}
		want := (m0 && m1) || (m0 && m2) || (m1 && m2)
		return out["vote"] == want && out["vote2"] == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// A single faulty module never corrupts the vote: flip each module
	// against a clean consensus.
	for flip := 0; flip < 3; flip++ {
		for _, truth := range []bool{false, true} {
			assign := map[Net]bool{"m0": truth, "m1": truth, "m2": truth}
			assign[Net(fmt.Sprintf("m%d", flip))] = !truth
			out, err := nl.Evaluate(assign)
			if err != nil {
				t.Fatal(err)
			}
			if out["vote"] != truth {
				t.Errorf("TMR failed to mask fault in m%d (truth %v)", flip, truth)
			}
		}
	}
}

func TestMUX2(t *testing.T) {
	nl, err := MUX2()
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.CheckFanOut(2); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 8; c++ {
		a, b, sel := c&1 != 0, c&2 != 0, c&4 != 0
		out, err := nl.Evaluate(map[Net]bool{"a": a, "b": b, "sel": sel, "sel2": sel})
		if err != nil {
			t.Fatal(err)
		}
		want := a
		if sel {
			want = b
		}
		if out["out"] != want {
			t.Errorf("mux(a=%v, b=%v, sel=%v) = %v", a, b, sel, out["out"])
		}
	}
	// Cost: 2 AND (MAJ structure) + 1 OR (MAJ structure) = 3·10.32 aJ.
	if got := nl.Energy() / 1e-18; got < 30.9 || got > 31.1 {
		t.Errorf("mux energy = %g aJ", got)
	}
}

// Package circuit builds logic circuits out of spin-wave gates and rolls
// up their energy, delay and fan-out requirements — the "larger circuits"
// motivation of the paper's introduction: a multi-output gate lets one
// structure feed several next-stage inputs without replication.
//
// Components carry the transducer-level cost model of internal/energy.
// The netlist checker enforces the physical fan-out limit: a spin-wave
// gate output may drive at most FanOut() next-stage inputs; exceeding it
// requires Splitter (directional coupler [36]) and Repeater [37]
// components, or gate replication — both of which cost energy, which is
// exactly the overhead the FO2 triangle gate avoids.
package circuit

import (
	"fmt"

	"spinwave/internal/energy"
)

// Component is a circuit element with logic behaviour and costs.
type Component interface {
	// Name identifies the component type.
	Name() string
	// NumInputs and NumOutputs give the port counts.
	NumInputs() int
	// NumOutputs returns the number of output ports.
	NumOutputs() int
	// FanOut returns how many next-stage inputs each output PORT may
	// drive. An FO2 gate exposes two output ports of fan-out 1 each: two
	// physical waveguides, each feeding one next-stage transducer.
	FanOut() int
	// Eval computes the outputs for the given inputs.
	Eval(in []bool) ([]bool, error)
	// Energy returns the per-operation energy in joules.
	Energy() float64
	// Delay returns the stage delay in seconds.
	Delay() float64
}

// swGate adapts an energy.SWGate cost model plus a truth function into a
// Component. The logic behaviour of each gate type is validated against
// the micromagnetic/behavioral backends by the core package tests.
type swGate struct {
	cost energy.SWGate
	nin  int
	nout int
	fn   func(in []bool) bool
}

func (g swGate) Name() string    { return g.cost.Name }
func (g swGate) NumInputs() int  { return g.nin }
func (g swGate) NumOutputs() int { return g.nout }
func (g swGate) FanOut() int     { return 1 } // one consumer per physical output waveguide
func (g swGate) Energy() float64 { return g.cost.Energy() }
func (g swGate) Delay() float64  { return g.cost.Delay() }

func (g swGate) Eval(in []bool) ([]bool, error) {
	if len(in) != g.nin {
		return nil, fmt.Errorf("circuit: %s needs %d inputs, got %d", g.Name(), g.nin, len(in))
	}
	v := g.fn(in)
	out := make([]bool, g.nout)
	for i := range out {
		out[i] = v
	}
	return out, nil
}

// MAJ3 returns a triangle FO2 Majority component.
func MAJ3() Component {
	return swGate{cost: energy.TriangleMAJ3(), nin: 3, nout: 2, fn: majority}
}

// XOR returns a triangle FO2 XOR component.
func XOR() Component {
	return swGate{cost: energy.TriangleXOR(), nin: 2, nout: 2, fn: func(in []bool) bool { return in[0] != in[1] }}
}

// XNOR returns a triangle FO2 XNOR component (flipped threshold, §III-B).
func XNOR() Component {
	c := energy.TriangleXOR()
	c.Name = "triangle XNOR (this work)"
	return swGate{cost: c, nin: 2, nout: 2, fn: func(in []bool) bool { return in[0] == in[1] }}
}

// AND returns the derived AND gate (MAJ3 with I3 pinned to 0, §III-A).
// The control transducer still consumes excitation energy.
func AND() Component {
	c := energy.TriangleMAJ3()
	c.Name = "triangle AND (MAJ3, I3=0)"
	return swGate{cost: c, nin: 2, nout: 2, fn: func(in []bool) bool { return in[0] && in[1] }}
}

// OR returns the derived OR gate (MAJ3 with I3 pinned to 1).
func OR() Component {
	c := energy.TriangleMAJ3()
	c.Name = "triangle OR (MAJ3, I3=1)"
	return swGate{cost: c, nin: 2, nout: 2, fn: func(in []bool) bool { return in[0] || in[1] }}
}

// MAJ3Single returns the single-output Majority variant (§III-A).
func MAJ3Single() Component {
	return swGate{cost: energy.TriangleMAJ3Single(), nin: 3, nout: 1, fn: majority}
}

// XORSingle returns a single-output XOR variant for fan-out comparisons.
func XORSingle() Component {
	return swGate{cost: energy.TriangleXORSingle(), nin: 2, nout: 1, fn: func(in []bool) bool { return in[0] != in[1] }}
}

// LadderMAJ3 returns the baseline ladder Majority component [22,23].
func LadderMAJ3() Component {
	return swGate{cost: energy.LadderMAJ3(), nin: 3, nout: 2, fn: majority}
}

// LadderXOR returns the baseline ladder XOR component [22,23].
func LadderXOR() Component {
	return swGate{cost: energy.LadderXOR(), nin: 2, nout: 2, fn: func(in []bool) bool { return in[0] != in[1] }}
}

func majority(in []bool) bool {
	n := 0
	for _, b := range in {
		if b {
			n++
		}
	}
	return n*2 > len(in)
}

// Splitter is a passive directional coupler [36] that splits one wave
// into ways outputs. It consumes no transducer energy but each branch is
// weaker, so it is normally followed by repeaters.
type Splitter struct{ Ways int }

// Name implements Component.
func (s Splitter) Name() string { return fmt.Sprintf("coupler-1x%d", s.Ways) }

// NumInputs implements Component.
func (s Splitter) NumInputs() int { return 1 }

// NumOutputs implements Component.
func (s Splitter) NumOutputs() int { return s.Ways }

// FanOut implements Component.
func (s Splitter) FanOut() int { return 1 }

// Eval implements Component.
func (s Splitter) Eval(in []bool) ([]bool, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("circuit: splitter needs 1 input, got %d", len(in))
	}
	out := make([]bool, s.Ways)
	for i := range out {
		out[i] = in[0]
	}
	return out, nil
}

// Energy implements Component: passive, no transducer energy.
func (s Splitter) Energy() float64 { return 0 }

// Delay implements Component: negligible next to the ME cells.
func (s Splitter) Delay() float64 { return 0 }

// Repeater regenerates a weak spin wave [37]; it costs one ME excitation.
type Repeater struct{}

// Name implements Component.
func (Repeater) Name() string { return "repeater" }

// NumInputs implements Component.
func (Repeater) NumInputs() int { return 1 }

// NumOutputs implements Component.
func (Repeater) NumOutputs() int { return 1 }

// FanOut implements Component.
func (Repeater) FanOut() int { return 1 }

// Eval implements Component.
func (Repeater) Eval(in []bool) ([]bool, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("circuit: repeater needs 1 input, got %d", len(in))
	}
	return []bool{in[0]}, nil
}

// Energy implements Component: one exciting ME cell.
func (Repeater) Energy() float64 {
	me := energy.DefaultMECell()
	return me.Power * energy.DefaultPulse
}

// Delay implements Component.
func (Repeater) Delay() float64 { return energy.DefaultMECell().Delay }

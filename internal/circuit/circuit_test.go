package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestComponentBasics(t *testing.T) {
	cases := []struct {
		c         Component
		nin, nout int
		energyAJ  float64
	}{
		{MAJ3(), 3, 2, 10.32},
		{XOR(), 2, 2, 6.88},
		{XNOR(), 2, 2, 6.88},
		{AND(), 2, 2, 10.32},
		{OR(), 2, 2, 10.32},
		{MAJ3Single(), 3, 1, 10.32},
		{XORSingle(), 2, 1, 6.88},
		{LadderMAJ3(), 3, 2, 13.76},
		{LadderXOR(), 2, 2, 13.76},
	}
	for _, c := range cases {
		if c.c.NumInputs() != c.nin || c.c.NumOutputs() != c.nout {
			t.Errorf("%s ports = %d/%d", c.c.Name(), c.c.NumInputs(), c.c.NumOutputs())
		}
		if got := c.c.Energy() / 1e-18; math.Abs(got-c.energyAJ) > 0.01 {
			t.Errorf("%s energy = %g aJ, want %g", c.c.Name(), got, c.energyAJ)
		}
		if c.c.Delay() <= 0 {
			t.Errorf("%s zero delay", c.c.Name())
		}
		if c.c.FanOut() != 1 {
			t.Errorf("%s per-port fan-out = %d", c.c.Name(), c.c.FanOut())
		}
	}
}

func TestComponentTruthFunctions(t *testing.T) {
	for _, in := range [][]bool{{false, false}, {false, true}, {true, false}, {true, true}} {
		a, b := in[0], in[1]
		check := func(c Component, want bool) {
			t.Helper()
			out, err := c.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			for _, o := range out {
				if o != want {
					t.Errorf("%s(%v,%v) = %v, want %v", c.Name(), a, b, o, want)
				}
			}
		}
		check(XOR(), a != b)
		check(XNOR(), a == b)
		check(AND(), a && b)
		check(OR(), a || b)
	}
	for c := 0; c < 8; c++ {
		in := []bool{c&1 != 0, c&2 != 0, c&4 != 0}
		cnt := 0
		for _, b := range in {
			if b {
				cnt++
			}
		}
		want := cnt >= 2
		for _, g := range []Component{MAJ3(), MAJ3Single(), LadderMAJ3()} {
			out, err := g.Eval(in)
			if err != nil {
				t.Fatal(err)
			}
			if out[0] != want {
				t.Errorf("%s(%v) = %v, want %v", g.Name(), in, out[0], want)
			}
		}
	}
}

func TestComponentEvalArity(t *testing.T) {
	if _, err := MAJ3().Eval([]bool{true}); err == nil {
		t.Error("bad arity accepted")
	}
	if _, err := (Splitter{Ways: 2}).Eval([]bool{true, false}); err == nil {
		t.Error("splitter bad arity accepted")
	}
	if _, err := (Repeater{}).Eval(nil); err == nil {
		t.Error("repeater bad arity accepted")
	}
}

func TestSplitterAndRepeater(t *testing.T) {
	s := Splitter{Ways: 3}
	out, err := s.Eval([]bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || !out[0] || !out[1] || !out[2] {
		t.Errorf("splitter out = %v", out)
	}
	if s.Energy() != 0 {
		t.Error("passive splitter consumes energy")
	}
	r := Repeater{}
	out, err = r.Eval([]bool{true})
	if err != nil || len(out) != 1 || !out[0] {
		t.Errorf("repeater out = %v, %v", out, err)
	}
	if got := r.Energy() / 1e-18; math.Abs(got-3.44) > 0.01 {
		t.Errorf("repeater energy = %g aJ, want 3.44", got)
	}
}

func TestNetlistWiringErrors(t *testing.T) {
	n := NewNetlist("t", "a", "b")
	if err := n.Add(XOR(), []Net{"a"}, []Net{"x", ""}); err == nil {
		t.Error("wrong input count accepted")
	}
	if err := n.Add(XOR(), []Net{"a", "b"}, []Net{"x"}); err == nil {
		t.Error("wrong output count accepted")
	}
	if err := n.Add(XOR(), []Net{"a", "b"}, []Net{"a", ""}); err == nil {
		t.Error("re-driving a net accepted")
	}
	if err := n.Add(XOR(), []Net{"a", "b"}, []Net{"x", ""}); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(XOR(), []Net{"a", "b"}, []Net{"x", ""}); err == nil {
		t.Error("duplicate driver accepted")
	}
}

func TestNetlistEvaluateAndErrors(t *testing.T) {
	n := NewNetlist("t", "a", "b")
	if err := n.Add(XOR(), []Net{"a", "b"}, []Net{"x", ""}); err != nil {
		t.Fatal(err)
	}
	n.MarkOutput("x")
	out, err := n.Evaluate(map[Net]bool{"a": true, "b": false})
	if err != nil {
		t.Fatal(err)
	}
	if !out["x"] {
		t.Error("XOR(1,0) = 0")
	}
	if _, err := n.Evaluate(map[Net]bool{"a": true}); err == nil {
		t.Error("missing input accepted")
	}
	// Undriven consumed net.
	bad := NewNetlist("bad", "a")
	_ = bad.Add(Repeater{}, []Net{"ghost"}, []Net{"x"})
	bad.MarkOutput("x")
	if _, err := bad.Evaluate(map[Net]bool{"a": true}); err == nil {
		t.Error("undriven net accepted")
	}
}

func TestCheckFanOut(t *testing.T) {
	n := NewNetlist("t", "a", "b", "c")
	_ = n.Add(XOR(), []Net{"a", "b"}, []Net{"x1", "x2"})
	_ = n.Add(XOR(), []Net{"x1", "c"}, []Net{"y", ""})
	_ = n.Add(Repeater{}, []Net{"x2"}, []Net{"z"})
	n.MarkOutput("y", "z")
	if err := n.CheckFanOut(1); err != nil {
		t.Errorf("legal wiring rejected: %v", err)
	}
	// Overloading one output port.
	over := NewNetlist("over", "a", "b")
	_ = over.Add(XOR(), []Net{"a", "b"}, []Net{"x", ""})
	_ = over.Add(Repeater{}, []Net{"x"}, []Net{"p"})
	_ = over.Add(Repeater{}, []Net{"x"}, []Net{"q"})
	over.MarkOutput("p", "q")
	if err := over.CheckFanOut(1); err == nil {
		t.Error("port overload not detected")
	}
	// Primary input overload.
	pin := NewNetlist("pin", "a")
	_ = pin.Add(Repeater{}, []Net{"a"}, []Net{"x"})
	_ = pin.Add(Repeater{}, []Net{"a"}, []Net{"y"})
	pin.MarkOutput("x", "y")
	if err := pin.CheckFanOut(1); err == nil {
		t.Error("input overload not detected")
	}
	if err := pin.CheckFanOut(2); err != nil {
		t.Errorf("input fan-out 2 rejected: %v", err)
	}
	// Consumed-but-undriven net.
	ghost := NewNetlist("ghost", "a")
	_ = ghost.Add(Repeater{}, []Net{"phantom"}, []Net{"x"})
	if err := ghost.CheckFanOut(1); err == nil {
		t.Error("undriven net not detected")
	}
}

func TestFullAdderAllStyles(t *testing.T) {
	for _, style := range []AdderStyle{TriangleFO2, LadderFO2, SingleWithRepeaters} {
		fa, err := FullAdder(style)
		if err != nil {
			t.Fatal(err)
		}
		if err := fa.CheckFanOut(2); err != nil {
			t.Errorf("%v: %v", style, err)
		}
		for c := 0; c < 8; c++ {
			a, b, cin := c&1 != 0, c&2 != 0, c&4 != 0
			out, err := fa.Evaluate(map[Net]bool{"a": a, "b": b, "cin": cin})
			if err != nil {
				t.Fatal(err)
			}
			wantSum := (a != b) != cin
			wantCarry := (a && b) || (a && cin) || (b && cin)
			if out["sum"] != wantSum || out["cout"] != wantCarry {
				t.Errorf("%v FA(%v,%v,%v) = %v", style, a, b, cin, out)
			}
		}
	}
}

// TestRippleCarryAdderAddition exhaustively checks 4-bit addition and
// property-checks 8-bit addition for all styles.
func TestRippleCarryAdderAddition(t *testing.T) {
	for _, style := range []AdderStyle{TriangleFO2, SingleWithRepeaters} {
		rca, err := RippleCarryAdder(4, style)
		if err != nil {
			t.Fatal(err)
		}
		if err := rca.CheckFanOut(2); err != nil {
			t.Fatalf("%v: %v", style, err)
		}
		for a := 0; a < 16; a++ {
			for b := 0; b < 16; b++ {
				got, err := addWith(rca, 4, a, b, false)
				if err != nil {
					t.Fatal(err)
				}
				if got != a+b {
					t.Fatalf("%v: %d+%d = %d", style, a, b, got)
				}
			}
		}
	}
}

func TestRippleCarryAdderProperty(t *testing.T) {
	rca, err := RippleCarryAdder(8, TriangleFO2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8, cin bool) bool {
		got, err := addWith(rca, 8, int(a), int(b), cin)
		if err != nil {
			return false
		}
		want := int(a) + int(b)
		if cin {
			want++
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func addWith(n *Netlist, bits, a, b int, cin bool) (int, error) {
	assign := map[Net]bool{"cin": cin}
	for i := 0; i < bits; i++ {
		assign[Net(sprintfNet("a%d", i))] = a&(1<<i) != 0
		assign[Net(sprintfNet("b%d", i))] = b&(1<<i) != 0
	}
	out, err := n.Evaluate(assign)
	if err != nil {
		return 0, err
	}
	res := 0
	for i := 0; i < bits; i++ {
		if out[Net(sprintfNet("sum%d", i))] {
			res |= 1 << i
		}
	}
	if out[Net(sprintfNet("c%d", bits))] {
		res |= 1 << bits
	}
	return res, nil
}

func sprintfNet(format string, i int) string {
	switch {
	case format == "a%d":
		return "a" + itoa(i)
	case format == "b%d":
		return "b" + itoa(i)
	case format == "sum%d":
		return "sum" + itoa(i)
	default:
		return "c" + itoa(i)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

func TestRippleCarryAdderValidation(t *testing.T) {
	if _, err := RippleCarryAdder(0, TriangleFO2); err == nil {
		t.Error("zero-bit adder accepted")
	}
	if _, err := FullAdder(AdderStyle(99)); err == nil {
		t.Error("unknown style accepted")
	}
}

// TestCompareAddersShowsFO2Advantage is the circuit-level version of the
// paper's energy argument: the triangle FO2 adder must beat both the
// ladder FO2 adder (25-50% per gate) and the single-output + repeater
// build.
func TestCompareAddersShowsFO2Advantage(t *testing.T) {
	rows, err := CompareAdders(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byStyle := map[AdderStyle]AdderComparison{}
	for _, r := range rows {
		byStyle[r.Style] = r
	}
	tri := byStyle[TriangleFO2]
	lad := byStyle[LadderFO2]
	single := byStyle[SingleWithRepeaters]
	if !(tri.EnergyAJ < lad.EnergyAJ) {
		t.Errorf("triangle %g aJ not below ladder %g aJ", tri.EnergyAJ, lad.EnergyAJ)
	}
	if !(tri.EnergyAJ < single.EnergyAJ) {
		t.Errorf("triangle %g aJ not below single+repeaters %g aJ", tri.EnergyAJ, single.EnergyAJ)
	}
	// Same gate-stage delay for triangle and ladder (paper: same delay).
	if math.Abs(tri.DelayNS-lad.DelayNS) > 1e-9 {
		t.Errorf("delays differ: %g vs %g", tri.DelayNS, lad.DelayNS)
	}
	// Repeater style adds repeater stages on the carry chain → slower.
	if !(single.DelayNS > tri.DelayNS) {
		t.Errorf("repeater build not slower: %g vs %g", single.DelayNS, tri.DelayNS)
	}
}

func TestAdderStyleString(t *testing.T) {
	if TriangleFO2.String() != "triangle-fo2" || LadderFO2.String() != "ladder-fo2" ||
		SingleWithRepeaters.String() != "single+repeaters" || AdderStyle(9).String() == "" {
		t.Error("style names wrong")
	}
}

func TestCriticalDelayLinearInBits(t *testing.T) {
	d4, err := delayOf(t, 4)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := delayOf(t, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Ripple carry: delay grows with bit count.
	if d8 <= d4 {
		t.Errorf("delay not growing: %g vs %g", d4, d8)
	}
}

func delayOf(t *testing.T, bits int) (float64, error) {
	t.Helper()
	n, err := RippleCarryAdder(bits, TriangleFO2)
	if err != nil {
		return 0, err
	}
	return n.CriticalDelay()
}

package circuit

import (
	"fmt"
)

// Inverter is a passive phase inverter: a (n+½)·λ waveguide section
// (paper §III-A: an output detected at (n+½)λ yields the inverted
// value). It moves the 0/π phase reference, costing no transducer energy
// and negligible delay.
type Inverter struct{}

// Name implements Component.
func (Inverter) Name() string { return "inverter ((n+1/2)λ section)" }

// NumInputs implements Component.
func (Inverter) NumInputs() int { return 1 }

// NumOutputs implements Component.
func (Inverter) NumOutputs() int { return 1 }

// FanOut implements Component.
func (Inverter) FanOut() int { return 1 }

// Eval implements Component.
func (Inverter) Eval(in []bool) ([]bool, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("circuit: inverter needs 1 input, got %d", len(in))
	}
	return []bool{!in[0]}, nil
}

// Energy implements Component: passive.
func (Inverter) Energy() float64 { return 0 }

// Delay implements Component: waveguide propagation is neglected
// (paper assumption (iii)).
func (Inverter) Delay() float64 { return 0 }

// ParityTree builds an n-input XOR reduction tree computing the parity
// of inputs in[0..n-1] on net "parity" — the error-detection workload the
// paper's §II-B motivates. Intermediate XOR gates use one of their two
// outputs; the unused fan-out copy is available on "<net>_spare".
func ParityTree(n int) (*Netlist, error) {
	if n < 2 {
		return nil, fmt.Errorf("circuit: parity tree needs ≥ 2 inputs, got %d", n)
	}
	inputs := make([]Net, n)
	for i := range inputs {
		inputs[i] = Net(fmt.Sprintf("in%d", i))
	}
	nl := NewNetlist(fmt.Sprintf("parity%d", n), inputs...)
	level := inputs
	stage := 0
	for len(level) > 1 {
		var next []Net
		for i := 0; i+1 < len(level); i += 2 {
			out := Net(fmt.Sprintf("p%d_%d", stage, i/2))
			if err := nl.Add(XOR(), []Net{level[i], level[i+1]}, []Net{out, out + "_spare"}); err != nil {
				return nil, err
			}
			next = append(next, out)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
		stage++
	}
	// Rename-by-wiring: a passive inverter pair would cost nothing, but
	// simplest is to mark the final net as the output.
	nl.MarkOutput(level[0])
	return nl, nil
}

// ParityOutput returns the name of the parity tree's output net.
func ParityOutput(nl *Netlist) (Net, error) {
	outs := nl.Outputs()
	if len(outs) == 0 {
		return "", fmt.Errorf("circuit: netlist has no outputs")
	}
	return outs[0], nil
}

// TMRVoter builds a triple-modular-redundancy voter: out = MAJ3 of the
// three module result inputs "m0", "m1", "m2" — the fault-tolerance
// workload of §II-B ("most of the error detection and correction schemes
// rely on n-input majorities"). Both majority outputs are exposed as
// "vote" and "vote2" so the corrected value can feed two consumers.
func TMRVoter() (*Netlist, error) {
	nl := NewNetlist("tmr-voter", "m0", "m1", "m2")
	if err := nl.Add(MAJ3(), []Net{"m0", "m1", "m2"}, []Net{"vote", "vote2"}); err != nil {
		return nil, err
	}
	nl.MarkOutput("vote", "vote2")
	return nl, nil
}

// MUX2 builds a 2:1 multiplexer out = sel ? b : a, using the derived
// AND/OR gates (§III-A) and a passive inverter for ¬sel. The select
// signal is consumed twice, which its upstream FO2 gate provides.
func MUX2() (*Netlist, error) {
	nl := NewNetlist("mux2", "a", "b", "sel", "sel2")
	if err := nl.Add(Inverter{}, []Net{"sel"}, []Net{"nsel"}); err != nil {
		return nil, err
	}
	if err := nl.Add(AND(), []Net{"a", "nsel"}, []Net{"t0", ""}); err != nil {
		return nil, err
	}
	if err := nl.Add(AND(), []Net{"b", "sel2"}, []Net{"t1", ""}); err != nil {
		return nil, err
	}
	if err := nl.Add(OR(), []Net{"t0", "t1"}, []Net{"out", "out2"}); err != nil {
		return nil, err
	}
	nl.MarkOutput("out")
	return nl, nil
}

package circuit

import (
	"fmt"
	"math"
)

// Net is a named signal wire. A net is driven by exactly one source
// (primary input or gate output) and consumed by gate inputs and/or a
// primary output.
type Net string

// instance is one placed component.
type instance struct {
	comp Component
	in   []Net
	out  []Net
}

// Netlist is a combinational circuit of spin-wave components.
type Netlist struct {
	Name      string
	inputs    []Net
	outputs   []Net
	instances []instance
	driver    map[Net]bool // net has a driver
}

// NewNetlist creates an empty circuit with the given primary inputs.
func NewNetlist(name string, primaryInputs ...Net) *Netlist {
	n := &Netlist{Name: name, driver: map[Net]bool{}}
	for _, in := range primaryInputs {
		n.inputs = append(n.inputs, in)
		n.driver[in] = true
	}
	return n
}

// Add places a component, wiring its inputs and outputs to the named
// nets. Output nets must not already be driven.
func (n *Netlist) Add(c Component, inputs []Net, outputs []Net) error {
	if len(inputs) != c.NumInputs() {
		return fmt.Errorf("circuit: %s needs %d inputs, got %d", c.Name(), c.NumInputs(), len(inputs))
	}
	if len(outputs) != c.NumOutputs() {
		return fmt.Errorf("circuit: %s has %d outputs, got %d nets", c.Name(), c.NumOutputs(), len(outputs))
	}
	for _, o := range outputs {
		if o == "" {
			continue // unused output
		}
		if n.driver[o] {
			return fmt.Errorf("circuit: net %q already driven", o)
		}
	}
	for _, o := range outputs {
		if o != "" {
			n.driver[o] = true
		}
	}
	n.instances = append(n.instances, instance{comp: c, in: inputs, out: outputs})
	return nil
}

// MarkOutput declares a net as a primary output.
func (n *Netlist) MarkOutput(nets ...Net) {
	n.outputs = append(n.outputs, nets...)
}

// Inputs returns the primary input nets.
func (n *Netlist) Inputs() []Net { return n.inputs }

// Outputs returns the primary output nets.
func (n *Netlist) Outputs() []Net { return n.outputs }

// NumGates returns the number of placed components.
func (n *Netlist) NumGates() int { return len(n.instances) }

// CheckFanOut verifies that no driven output port feeds more consumers
// than the driving component's fan-out allows, and that every consumed
// net has a driver. Primary inputs are assumed to come from transducers
// with fan-out 1 unless relaxed by inputFanOut.
func (n *Netlist) CheckFanOut(inputFanOut int) error {
	if inputFanOut < 1 {
		inputFanOut = 1
	}
	consumers := map[Net]int{}
	for _, inst := range n.instances {
		for _, in := range inst.in {
			consumers[in]++
		}
	}
	for _, out := range n.outputs {
		consumers[out]++
	}
	// Per-port fan-out of each instance output.
	for _, inst := range n.instances {
		for _, out := range inst.out {
			if out == "" {
				continue
			}
			if c := consumers[out]; c > inst.comp.FanOut() {
				return fmt.Errorf("circuit: net %q driven by %s (fan-out %d) has %d consumers",
					out, inst.comp.Name(), inst.comp.FanOut(), c)
			}
		}
	}
	for _, in := range n.inputs {
		if c := consumers[in]; c > inputFanOut {
			return fmt.Errorf("circuit: primary input %q has %d consumers (limit %d)", in, c, inputFanOut)
		}
	}
	// Every consumed net must be driven.
	for net := range consumers {
		if !n.driver[net] {
			return fmt.Errorf("circuit: net %q consumed but never driven", net)
		}
	}
	return nil
}

// Evaluate computes all primary outputs for the given input assignment.
// The circuit must be acyclic; instances are evaluated in dependency
// order.
func (n *Netlist) Evaluate(assign map[Net]bool) (map[Net]bool, error) {
	values := map[Net]bool{}
	for _, in := range n.inputs {
		v, ok := assign[in]
		if !ok {
			return nil, fmt.Errorf("circuit: missing value for input %q", in)
		}
		values[in] = v
	}
	remaining := make([]instance, len(n.instances))
	copy(remaining, n.instances)
	for len(remaining) > 0 {
		progressed := false
		next := remaining[:0]
		for _, inst := range remaining {
			ready := true
			for _, in := range inst.in {
				if _, ok := values[in]; !ok {
					ready = false
					break
				}
			}
			if !ready {
				next = append(next, inst)
				continue
			}
			in := make([]bool, len(inst.in))
			for i, net := range inst.in {
				in[i] = values[net]
			}
			out, err := inst.comp.Eval(in)
			if err != nil {
				return nil, err
			}
			for i, net := range inst.out {
				if net != "" {
					values[net] = out[i]
				}
			}
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("circuit: %s has a combinational cycle or undriven nets", n.Name)
		}
		remaining = append([]instance(nil), next...)
	}
	result := map[Net]bool{}
	for _, o := range n.outputs {
		v, ok := values[o]
		if !ok {
			return nil, fmt.Errorf("circuit: output %q never driven", o)
		}
		result[o] = v
	}
	return result, nil
}

// Energy returns the total per-operation energy of all components.
func (n *Netlist) Energy() float64 {
	var e float64
	for _, inst := range n.instances {
		e += inst.comp.Energy()
	}
	return e
}

// CriticalDelay returns the worst-case input-to-output delay, computed
// as the longest accumulated component delay along any path.
func (n *Netlist) CriticalDelay() (float64, error) {
	arrival := map[Net]float64{}
	for _, in := range n.inputs {
		arrival[in] = 0
	}
	remaining := make([]instance, len(n.instances))
	copy(remaining, n.instances)
	for len(remaining) > 0 {
		progressed := false
		next := remaining[:0]
		for _, inst := range remaining {
			ready := true
			worst := 0.0
			for _, in := range inst.in {
				t, ok := arrival[in]
				if !ok {
					ready = false
					break
				}
				worst = math.Max(worst, t)
			}
			if !ready {
				next = append(next, inst)
				continue
			}
			for _, out := range inst.out {
				if out != "" {
					arrival[out] = worst + inst.comp.Delay()
				}
			}
			progressed = true
		}
		if !progressed {
			return 0, fmt.Errorf("circuit: %s has a cycle", n.Name)
		}
		remaining = append([]instance(nil), next...)
	}
	worst := 0.0
	for _, o := range n.outputs {
		t, ok := arrival[o]
		if !ok {
			return 0, fmt.Errorf("circuit: output %q never driven", o)
		}
		worst = math.Max(worst, t)
	}
	return worst, nil
}

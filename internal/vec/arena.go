package vec

import "fmt"

// Arena carves same-length Fields out of one contiguous backing
// allocation. The LLG solver allocates all of its per-run scratch
// (effective field, RK stage buffers, source overlay) from a single
// arena, so solver construction costs one allocation for all scratch
// and the buffers are contiguous in memory — friendlier to the cache
// than independently allocated slices and impossible to resize apart.
//
// An Arena is a bump allocator: Field hands out successive windows and
// panics when the capacity declared at construction is exhausted, which
// in the solver indicates a programming error rather than a recoverable
// condition.
type Arena struct {
	buf   []Vector
	cells int
	next  int
}

// NewArena allocates backing storage for fields×cells vectors, zeroed.
func NewArena(fields, cells int) *Arena {
	if fields < 0 || cells < 0 {
		panic(fmt.Sprintf("vec: invalid arena shape %d fields x %d cells", fields, cells))
	}
	return &Arena{buf: make([]Vector, fields*cells), cells: cells}
}

// Field returns the next unused cells-length Field from the arena.
func (a *Arena) Field() Field {
	if a.next+a.cells > len(a.buf) {
		panic("vec: arena exhausted")
	}
	f := Field(a.buf[a.next : a.next+a.cells : a.next+a.cells])
	a.next += a.cells
	return f
}

// Remaining returns how many more Fields the arena can hand out.
func (a *Arena) Remaining() int {
	if a.cells == 0 {
		return 0
	}
	return (len(a.buf) - a.next) / a.cells
}

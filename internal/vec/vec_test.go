package vec

import (
	"math"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func approx(a, b float64) bool { return math.Abs(a-b) <= eps*(1+math.Abs(a)+math.Abs(b)) }

func vecApprox(a, b Vector) bool {
	return approx(a.X, b.X) && approx(a.Y, b.Y) && approx(a.Z, b.Z)
}

func TestAddSub(t *testing.T) {
	a, b := V(1, 2, 3), V(-4, 5, 0.5)
	if got := a.Add(b); !vecApprox(got, V(-3, 7, 3.5)) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); !vecApprox(got, V(5, -3, 2.5)) {
		t.Errorf("Sub = %v", got)
	}
}

func TestScaleMAdd(t *testing.T) {
	a := V(1, -2, 4)
	if got := a.Scale(-0.5); !vecApprox(got, V(-0.5, 1, -2)) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.MAdd(2, V(1, 1, 1)); !vecApprox(got, V(3, 0, 6)) {
		t.Errorf("MAdd = %v", got)
	}
}

func TestDotCross(t *testing.T) {
	if got := UnitX.Dot(UnitY); got != 0 {
		t.Errorf("x·y = %v, want 0", got)
	}
	if got := UnitX.Cross(UnitY); !vecApprox(got, UnitZ) {
		t.Errorf("x×y = %v, want z", got)
	}
	if got := UnitY.Cross(UnitZ); !vecApprox(got, UnitX) {
		t.Errorf("y×z = %v, want x", got)
	}
	if got := UnitZ.Cross(UnitX); !vecApprox(got, UnitY) {
		t.Errorf("z×x = %v, want y", got)
	}
}

func TestNormNormalized(t *testing.T) {
	a := V(3, 4, 0)
	if got := a.Norm(); !approx(got, 5) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := a.Normalized().Norm(); !approx(got, 1) {
		t.Errorf("|Normalized| = %v, want 1", got)
	}
	if got := Zero.Normalized(); got != Zero {
		t.Errorf("Normalized zero = %v, want zero", got)
	}
}

func TestAngle(t *testing.T) {
	if got := UnitX.Angle(UnitY); !approx(got, math.Pi/2) {
		t.Errorf("angle(x,y) = %v, want π/2", got)
	}
	if got := UnitX.Angle(UnitX.Neg()); !approx(got, math.Pi) {
		t.Errorf("angle(x,-x) = %v, want π", got)
	}
	if got := Zero.Angle(UnitX); got != 0 {
		t.Errorf("angle(0,x) = %v, want 0", got)
	}
}

func TestRotZ(t *testing.T) {
	got := UnitX.RotZ(math.Pi / 2)
	if !vecApprox(got, UnitY) {
		t.Errorf("RotZ(x, π/2) = %v, want y", got)
	}
	// Rotation preserves length and z.
	a := V(1.5, -2.5, 7)
	r := a.RotZ(0.7)
	if !approx(a.Norm(), r.Norm()) {
		t.Errorf("rotation changed norm: %v -> %v", a.Norm(), r.Norm())
	}
	if r.Z != a.Z {
		t.Errorf("rotation changed z: %v", r.Z)
	}
}

func TestIsFinite(t *testing.T) {
	if !V(1, 2, 3).IsFinite() {
		t.Error("finite vector reported non-finite")
	}
	if V(math.NaN(), 0, 0).IsFinite() {
		t.Error("NaN vector reported finite")
	}
	if V(0, math.Inf(1), 0).IsFinite() {
		t.Error("Inf vector reported finite")
	}
}

// Property: cross product is orthogonal to both operands and anticommutes.
func TestCrossProperties(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		if !a.IsFinite() || !b.IsFinite() || a.Norm() > 1e100 || b.Norm() > 1e100 {
			return true
		}
		c := a.Cross(b)
		tol := 1e-9 * (1 + a.Norm()*b.Norm())
		if math.Abs(c.Dot(a)) > tol*(1+a.Norm()) {
			return false
		}
		if math.Abs(c.Dot(b)) > tol*(1+b.Norm()) {
			return false
		}
		d := b.Cross(a)
		return c.Add(d).Norm() <= tol
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: |a×b|² + (a·b)² == |a|²|b|² (Lagrange identity).
func TestLagrangeIdentity(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := V(ax, ay, az), V(bx, by, bz)
		// Limit magnitudes so the identity stays in well-conditioned range.
		if a.Norm() > 1e6 || b.Norm() > 1e6 {
			return true
		}
		lhs := a.Cross(b).Norm2() + a.Dot(b)*a.Dot(b)
		rhs := a.Norm2() * b.Norm2()
		return math.Abs(lhs-rhs) <= 1e-6*(1+rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFieldOps(t *testing.T) {
	f := NewField(4)
	f.Fill(V(1, 0, 0))
	g := NewField(4)
	g.Fill(V(0, 2, 0))
	f.AddScaled(0.5, g)
	for i := range f {
		if !vecApprox(f[i], V(1, 1, 0)) {
			t.Fatalf("AddScaled[%d] = %v", i, f[i])
		}
	}
	f.Normalize()
	for i := range f {
		if !approx(f[i].Norm(), 1) {
			t.Fatalf("Normalize[%d] -> |v| = %v", i, f[i].Norm())
		}
	}
	f.Zero()
	for i := range f {
		if f[i] != Zero {
			t.Fatalf("Zero[%d] = %v", i, f[i])
		}
	}
}

func TestFieldCopyMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Copy with mismatched lengths did not panic")
		}
	}()
	NewField(2).Copy(NewField(3))
}

func TestFieldAverage(t *testing.T) {
	f := Field{V(1, 0, 0), V(3, 0, 0), V(0, 0, 8)}
	if got := f.Average(nil); !vecApprox(got, V(4.0/3, 0, 8.0/3)) {
		t.Errorf("Average(nil) = %v", got)
	}
	if got := f.Average([]int{0, 1}); !vecApprox(got, V(2, 0, 0)) {
		t.Errorf("Average([0,1]) = %v", got)
	}
	if got := f.Average([]int{}); got != Zero {
		t.Errorf("Average(empty) = %v", got)
	}
	if got := (Field{}).Average(nil); got != Zero {
		t.Errorf("Average of empty field = %v", got)
	}
}

func TestFieldMaxNorm(t *testing.T) {
	f := Field{V(1, 0, 0), V(0, -5, 0), V(3, 4, 0)}
	if got := f.MaxNorm(); !approx(got, 5) {
		t.Errorf("MaxNorm = %v, want 5", got)
	}
}

func BenchmarkFieldAddScaled(b *testing.B) {
	f := NewField(4096)
	g := NewField(4096)
	g.Fill(V(1, 2, 3))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.AddScaled(1e-3, g)
	}
}

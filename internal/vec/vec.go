// Package vec implements the small dense 3-vector type used for
// magnetization and field values throughout the simulator, together with
// helpers for whole-field (slice-of-vector) arithmetic.
//
// Vector is a value type; all methods return new values and never mutate
// the receiver, which keeps LLG integrator code free of aliasing bugs. The
// Field helpers operate in place for performance.
package vec

import (
	"fmt"
	"math"
)

// Vector is a 3-component vector in Cartesian coordinates.
type Vector struct {
	X, Y, Z float64
}

// V is shorthand for constructing a Vector.
func V(x, y, z float64) Vector { return Vector{x, y, z} }

// UnitX, UnitY and UnitZ are the Cartesian basis vectors.
var (
	UnitX = Vector{1, 0, 0}
	UnitY = Vector{0, 1, 0}
	UnitZ = Vector{0, 0, 1}
	Zero  = Vector{0, 0, 0}
)

// Add returns a + b.
func (a Vector) Add(b Vector) Vector { return Vector{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a Vector) Sub(b Vector) Vector { return Vector{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s·a.
func (a Vector) Scale(s float64) Vector { return Vector{s * a.X, s * a.Y, s * a.Z} }

// MAdd returns a + s·b (multiply-add), the workhorse of RK stages.
func (a Vector) MAdd(s float64, b Vector) Vector {
	return Vector{a.X + s*b.X, a.Y + s*b.Y, a.Z + s*b.Z}
}

// Dot returns the scalar product a·b.
func (a Vector) Dot(b Vector) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the vector product a×b.
func (a Vector) Cross(b Vector) Vector {
	return Vector{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm returns the Euclidean length |a|.
func (a Vector) Norm() float64 { return math.Sqrt(a.Dot(a)) }

// Norm2 returns the squared length a·a.
func (a Vector) Norm2() float64 { return a.Dot(a) }

// Normalized returns a/|a|, or the zero vector if |a| == 0.
func (a Vector) Normalized() Vector {
	n := a.Norm()
	if n == 0 {
		return Zero
	}
	return a.Scale(1 / n)
}

// Neg returns -a.
func (a Vector) Neg() Vector { return Vector{-a.X, -a.Y, -a.Z} }

// Angle returns the angle between a and b in radians, in [0, π].
func (a Vector) Angle(b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	c := a.Dot(b) / (na * nb)
	c = math.Max(-1, math.Min(1, c))
	return math.Acos(c)
}

// IsFinite reports whether all components are finite numbers.
func (a Vector) IsFinite() bool {
	return !math.IsNaN(a.X) && !math.IsInf(a.X, 0) &&
		!math.IsNaN(a.Y) && !math.IsInf(a.Y, 0) &&
		!math.IsNaN(a.Z) && !math.IsInf(a.Z, 0)
}

// String formats the vector as "(x, y, z)" with compact precision.
func (a Vector) String() string {
	return fmt.Sprintf("(%.6g, %.6g, %.6g)", a.X, a.Y, a.Z)
}

// RotZ returns a rotated about the z axis by angle θ (radians,
// counterclockwise when viewed from +z).
func (a Vector) RotZ(theta float64) Vector {
	c, s := math.Cos(theta), math.Sin(theta)
	return Vector{c*a.X - s*a.Y, s*a.X + c*a.Y, a.Z}
}

// Field is a contiguous array of vectors, one per mesh cell.
type Field []Vector

// NewField allocates a zeroed field of n cells.
func NewField(n int) Field { return make(Field, n) }

// Zero sets every vector in the field to zero.
func (f Field) Zero() {
	for i := range f {
		f[i] = Vector{}
	}
}

// Fill sets every vector in the field to v.
func (f Field) Fill(v Vector) {
	for i := range f {
		f[i] = v
	}
}

// Copy copies src into f. The fields must have equal length.
func (f Field) Copy(src Field) {
	if len(f) != len(src) {
		panic(fmt.Sprintf("vec: Copy length mismatch %d != %d", len(f), len(src)))
	}
	copy(f, src)
}

// AddScaled adds s·src to f element-wise.
func (f Field) AddScaled(s float64, src Field) {
	if len(f) != len(src) {
		panic(fmt.Sprintf("vec: AddScaled length mismatch %d != %d", len(f), len(src)))
	}
	for i := range f {
		f[i] = f[i].MAdd(s, src[i])
	}
}

// Normalize renormalizes every nonzero vector in f to unit length.
func (f Field) Normalize() {
	for i := range f {
		f[i] = f[i].Normalized()
	}
}

// MaxNorm returns the largest vector length present in f.
func (f Field) MaxNorm() float64 {
	max := 0.0
	for i := range f {
		if n := f[i].Norm2(); n > max {
			max = n
		}
	}
	return math.Sqrt(max)
}

// Average returns the mean vector over the cells listed in idx. If idx is
// nil, the average is over the whole field. An empty selection returns the
// zero vector.
func (f Field) Average(idx []int) Vector {
	var sum Vector
	if idx == nil {
		if len(f) == 0 {
			return Zero
		}
		for i := range f {
			sum = sum.Add(f[i])
		}
		return sum.Scale(1 / float64(len(f)))
	}
	if len(idx) == 0 {
		return Zero
	}
	for _, i := range idx {
		sum = sum.Add(f[i])
	}
	return sum.Scale(1 / float64(len(idx)))
}

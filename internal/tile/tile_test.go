package tile

import (
	"sync/atomic"
	"testing"
)

func TestSplitTable(t *testing.T) {
	cases := []struct {
		name        string
		rows, parts int
		want        []Band
	}{
		{"even split", 8, 4, []Band{{0, 2}, {2, 4}, {4, 6}, {6, 8}}},
		{"non-divisible", 10, 3, []Band{{0, 3}, {3, 6}, {6, 10}}},
		{"non-divisible 7/2", 7, 2, []Band{{0, 3}, {3, 7}}},
		{"more workers than rows", 3, 8, []Band{{0, 1}, {1, 2}, {2, 3}}},
		{"one-row grid", 1, 8, []Band{{0, 1}}},
		{"single part", 5, 1, []Band{{0, 5}}},
		{"zero parts clamps to one", 5, 0, []Band{{0, 5}}},
		{"negative parts clamps to one", 5, -3, []Band{{0, 5}}},
		{"zero rows", 0, 4, nil},
		{"negative rows", -1, 4, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Split(c.rows, c.parts)
			if len(got) != len(c.want) {
				t.Fatalf("Split(%d, %d) = %v, want %v", c.rows, c.parts, got, c.want)
			}
			for i := range got {
				if got[i] != c.want[i] {
					t.Fatalf("Split(%d, %d)[%d] = %v, want %v", c.rows, c.parts, i, got[i], c.want[i])
				}
			}
		})
	}
}

// TestSplitInvariants fuzzes the proportional cut points: bands must
// tile [0, rows) exactly, never be empty, and never exceed min(parts,
// rows) in count.
func TestSplitInvariants(t *testing.T) {
	for rows := 1; rows <= 40; rows++ {
		for parts := 1; parts <= 20; parts++ {
			bands := Split(rows, parts)
			wantN := parts
			if rows < parts {
				wantN = rows
			}
			if len(bands) != wantN {
				t.Fatalf("Split(%d, %d): %d bands, want %d", rows, parts, len(bands), wantN)
			}
			next := 0
			for _, b := range bands {
				if b.J0 != next {
					t.Fatalf("Split(%d, %d): gap/overlap at %v", rows, parts, b)
				}
				if b.Rows() < 1 {
					t.Fatalf("Split(%d, %d): empty band %v", rows, parts, b)
				}
				next = b.J1
			}
			if next != rows {
				t.Fatalf("Split(%d, %d): bands end at %d", rows, parts, next)
			}
		}
	}
}

func TestPoolRunCoversAllTasks(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	if p.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", p.Workers())
	}
	for _, tasks := range []int{0, 1, 3, 4, 17, 100} {
		hits := make([]int32, tasks)
		p.Run(tasks, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("tasks=%d: task %d ran %d times", tasks, i, h)
			}
		}
	}
}

// TestPoolReuse hammers the same pool with many passes; under -race this
// checks the happens-before edges of the shared kernel field and the
// reusable wait group.
func TestPoolReuse(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	sum := make([]int64, 8)
	for round := 0; round < 500; round++ {
		p.Run(len(sum), func(i int) { sum[i]++ })
	}
	for i, v := range sum {
		if v != 500 {
			t.Fatalf("slot %d = %d, want 500", i, v)
		}
	}
}

func TestNilPoolRunsInline(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d", p.Workers())
	}
	order := []int{}
	p.Run(4, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order %v not sequential", order)
		}
	}
	p.Close() // must not panic
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Run(4, func(int) {})
	p.Close()
	p.Close()
}

func TestMergeHelpers(t *testing.T) {
	if got := MaxFloat64s(nil); got != 0 {
		t.Errorf("MaxFloat64s(nil) = %g", got)
	}
	if got := MaxFloat64s([]float64{0.5, 2.25, 1}); got != 2.25 {
		t.Errorf("MaxFloat64s = %g, want 2.25", got)
	}
	if got := SumFloat64s(nil); got != 0 {
		t.Errorf("SumFloat64s(nil) = %g", got)
	}
	// Fixed merge order: identical partials must give the bitwise-same
	// sum on every call.
	parts := []float64{1e-16, 1, -1, 3e-7}
	first := SumFloat64s(parts)
	for i := 0; i < 10; i++ {
		if SumFloat64s(parts) != first {
			t.Fatal("SumFloat64s is not reproducible")
		}
	}
}

// Package tile is the band-decomposition scheduler behind the parallel
// LLG stepper: it splits a 2-D mesh into horizontal row bands and runs
// per-band kernels on a persistent worker pool.
//
// Design constraints (see DESIGN.md §10):
//
//   - Bands partition rows disjointly, so concurrent kernels never write
//     the same cell. The exchange stencil reads one halo row on each side
//     of a band, which is safe because magnetization inputs are immutable
//     during a field pass; passes that write a field the stencil reads
//     are separated by the Run barrier.
//   - Band boundaries depend only on (rows, bands requested), never on
//     scheduling, and per-cell arithmetic is band-independent, so
//     magnetization trajectories are bit-for-bit identical for any
//     worker count.
//   - Reductions (max torque error, energy) are computed as per-band or
//     per-row partials and merged after the barrier in fixed index order
//     (MaxFloat64s, SumFloat64s), keeping them deterministic too.
//
// A Pool's goroutines are persistent: the hot stepping loop enqueues
// plain band indices on a channel and parks on a reusable sync.WaitGroup,
// so a steady-state pass performs no allocations.
package tile

import (
	"fmt"
	"sync"
)

// Band is a half-open range of mesh rows [J0, J1) processed by one
// kernel invocation.
type Band struct {
	J0, J1 int
}

// Rows returns the number of rows in the band.
func (b Band) Rows() int { return b.J1 - b.J0 }

// String formats the band as "[J0,J1)".
func (b Band) String() string { return fmt.Sprintf("[%d,%d)", b.J0, b.J1) }

// Split partitions rows [0, rows) into at most parts contiguous bands of
// near-equal height. Empty bands are never returned: when rows < parts
// the result has exactly rows single-row bands, and a 1-row grid always
// yields one band. Split(rows, parts) is deterministic and uses the same
// proportional cut points for every call, so band boundaries — and hence
// per-band reduction partials — do not depend on scheduling.
func Split(rows, parts int) []Band {
	if rows <= 0 {
		return nil
	}
	if parts < 1 {
		parts = 1
	}
	if parts > rows {
		parts = rows
	}
	bands := make([]Band, 0, parts)
	for w := 0; w < parts; w++ {
		j0 := rows * w / parts
		j1 := rows * (w + 1) / parts
		if j0 == j1 {
			continue // defensive; unreachable once parts <= rows
		}
		bands = append(bands, Band{J0: j0, J1: j1})
	}
	return bands
}

// Pool runs banded kernels on a fixed set of persistent worker
// goroutines. The zero value is not usable; call NewPool. A nil *Pool is
// valid and runs every kernel inline on the calling goroutine, which
// keeps serial and parallel call sites identical.
//
// Pool is safe for use by one controller goroutine at a time: Run may
// not be called concurrently with itself or Close. (The LLG solver is
// the controller; distinct solvers own distinct pools.)
type Pool struct {
	workers int
	work    chan int
	fn      func(int) // kernel of the in-flight Run pass
	pending sync.WaitGroup
	closed  sync.Once
}

// NewPool starts a pool of n persistent workers. n < 1 is clamped to 1.
// Callers must Close the pool when done with it or its goroutines leak.
//
// The workers deliberately carry no pprof goroutine labels: labeling
// them (pprof.Do or SetGoroutineLabels) makes the process allocate
// intermittently while the pool is hot, which trips the process-wide
// malloc counting in TestStepAllocates' zero-alloc pin. Band kernels
// are attributed in CPU profiles by function name instead; the
// engine's eval/task goroutines, which are not under an allocation
// pin, do carry labels (DESIGN.md §11).
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	p := &Pool{workers: n, work: make(chan int, n)}
	for i := 0; i < n; i++ {
		go p.worker()
	}
	return p
}

// Workers returns the number of worker goroutines.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

func (p *Pool) worker() {
	for i := range p.work {
		p.fn(i)
		p.pending.Done()
	}
}

// Run executes f(i) for every task index i in [0, tasks) across the
// pool and returns when all invocations have finished — a full barrier.
// On a nil pool the tasks run inline in index order. Run allocates
// nothing: callers that need zero-allocation passes should reuse a
// prebuilt f rather than capturing per-call state in a fresh closure.
func (p *Pool) Run(tasks int, f func(i int)) {
	if tasks <= 0 {
		return
	}
	if p == nil || p.workers == 1 || tasks == 1 {
		for i := 0; i < tasks; i++ {
			f(i)
		}
		return
	}
	// The channel send happens-before the worker's receive, so workers
	// observe p.fn written here; pending.Wait happens-after every Done,
	// so the next Run's write to p.fn cannot race with this pass.
	p.fn = f
	p.pending.Add(tasks)
	for i := 0; i < tasks; i++ {
		p.work <- i
	}
	p.pending.Wait()
	p.fn = nil
}

// Close stops the worker goroutines. It is idempotent and must not be
// called concurrently with Run. A nil pool ignores Close.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.closed.Do(func() { close(p.work) })
}

// MaxFloat64s merges per-band maxima in fixed index order and returns
// the overall maximum, or 0 for an empty slice. Floating-point max is
// associative, but merging in index order keeps the convention uniform
// with SumFloat64s.
func MaxFloat64s(partials []float64) float64 {
	max := 0.0
	for _, v := range partials {
		if v > max {
			max = v
		}
	}
	return max
}

// SumFloat64s merges per-band (or per-row) partial sums in fixed index
// order. Unlike max, floating-point addition is not associative: summing
// fixed partials in index order is what makes banded reductions
// bit-identical for every worker count.
func SumFloat64s(partials []float64) float64 {
	sum := 0.0
	for _, v := range partials {
		sum += v
	}
	return sum
}

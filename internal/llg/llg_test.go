package llg

import (
	"math"
	"testing"

	"spinwave/internal/grid"
	"spinwave/internal/material"
	"spinwave/internal/units"
	"spinwave/internal/vec"
)

// singleSpin builds a 1-cell solver with only a uniform bias field along z
// (all local field terms disabled), so the dynamics are pure Larmor
// precession at f = γ·B/2π.
func singleSpin(t *testing.T, bz, alpha, dt float64) *Solver {
	t.Helper()
	mesh := grid.MustMesh(1, 1, 1e-9, 1e-9, 1e-9)
	mat := material.FeCoB()
	mat.Alpha = alpha
	s, err := New(mesh, grid.FullRegion(mesh), mat, dt)
	if err != nil {
		t.Fatal(err)
	}
	s.Eval.DisableExchange = true
	s.Eval.DisableAnisotropy = true
	s.Eval.DisableDemag = true
	s.Eval.Coeffs.BBias = vec.V(0, 0, bz)
	return s
}

func TestNewValidation(t *testing.T) {
	mesh := grid.MustMesh(2, 2, 1e-9, 1e-9, 1e-9)
	if _, err := New(mesh, grid.FullRegion(mesh), material.FeCoB(), 0); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := New(mesh, make(grid.Region, 1), material.FeCoB(), 1e-13); err == nil {
		t.Error("bad region accepted")
	}
}

func TestLarmorFrequency(t *testing.T) {
	// B = 0.5 T → f = γB/2π ≈ 14.0 GHz. Count zero crossings of mx over
	// 2 ns and compare.
	bz := 0.5
	dt := 50e-15
	s := singleSpin(t, bz, 0, dt)
	s.TiltM(0.1)

	var prev float64
	crossings := 0
	first := true
	s.Run(2e-9, func(step int) bool {
		mx := s.M[0].X
		if !first && prev < 0 && mx >= 0 {
			crossings++
		}
		prev = mx
		first = false
		return true
	})
	fWant := s.Gamma * bz / (2 * math.Pi)
	fGot := float64(crossings) / 2e-9
	if math.Abs(fGot-fWant) > 0.02*fWant {
		t.Errorf("Larmor f = %.4g Hz, want %.4g", fGot, fWant)
	}
}

func TestZeroDampingConservesMz(t *testing.T) {
	s := singleSpin(t, 0.3, 0, 100e-15)
	s.TiltM(0.2)
	mz0 := s.M[0].Z
	s.Run(1e-9, nil)
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.M[0].Z-mz0) > 1e-6 {
		t.Errorf("mz drifted from %g to %g with α=0", mz0, s.M[0].Z)
	}
	if math.Abs(s.M[0].Norm()-1) > 1e-9 {
		t.Errorf("|m| = %g, want 1", s.M[0].Norm())
	}
}

func TestDampingRelaxesToFieldAxis(t *testing.T) {
	s := singleSpin(t, 0.5, 0.1, 100e-15)
	s.TiltM(1.0) // large tilt
	mzPrev := s.M[0].Z
	monotone := true
	s.Run(3e-9, func(step int) bool {
		if step%100 == 0 {
			if s.M[0].Z < mzPrev-1e-9 {
				monotone = false
			}
			mzPrev = s.M[0].Z
		}
		return true
	})
	if !monotone {
		t.Error("mz did not increase monotonically under damping")
	}
	if s.M[0].Z < 0.999 {
		t.Errorf("mz = %g after relaxation, want ≈1", s.M[0].Z)
	}
}

func TestHeunMatchesRK4(t *testing.T) {
	a := singleSpin(t, 0.4, 0.01, 20e-15)
	b := singleSpin(t, 0.4, 0.01, 20e-15)
	b.Scheme = Heun
	a.TiltM(0.3)
	b.TiltM(0.3)
	a.Run(0.5e-9, nil)
	b.Run(0.5e-9, nil)
	if d := a.M[0].Sub(b.M[0]).Norm(); d > 1e-4 {
		t.Errorf("Heun deviates from RK4 by %g", d)
	}
}

func TestExchangeAlignsNeighbors(t *testing.T) {
	mesh := grid.MustMesh(2, 1, 2e-9, 2e-9, 1e-9)
	mat := material.FeCoB()
	mat.Alpha = 0.5 // fast relaxation
	s, err := New(mesh, grid.FullRegion(mesh), mat, StableDt(mesh, mat))
	if err != nil {
		t.Fatal(err)
	}
	// Start nearly orthogonal: strong exchange + anisotropy should align
	// both spins along +z.
	s.M[0] = vec.UnitZ
	s.M[1] = vec.V(1, 0, 0.2).Normalized()
	s.Run(2e-9, nil)
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	if s.M[0].Dot(s.M[1]) < 0.999 {
		t.Errorf("spins not aligned: m0=%v m1=%v", s.M[0], s.M[1])
	}
	if s.M[0].Z < 0.99 {
		t.Errorf("spins not along easy axis: %v", s.M[0])
	}
}

func TestStableDtScalesWithCellSize(t *testing.T) {
	mat := material.FeCoB()
	coarse := StableDt(grid.MustMesh(4, 4, 10e-9, 10e-9, 1e-9), mat)
	fine := StableDt(grid.MustMesh(4, 4, 2e-9, 2e-9, 1e-9), mat)
	if fine >= coarse {
		t.Errorf("StableDt did not shrink with cell size: %g vs %g", fine, coarse)
	}
	// For the paper's defaults (5 nm cells) the step should be in the
	// 0.05–1 ps window that makes runs tractable.
	dt := StableDt(grid.MustMesh(4, 4, 5e-9, 5e-9, 1e-9), mat)
	if dt < 0.05e-12 || dt > 1e-12 {
		t.Errorf("StableDt(5 nm) = %g s, outside expected window", dt)
	}
}

func TestSetAlphaProfileAndAbsorber(t *testing.T) {
	mesh := grid.MustMesh(10, 1, 5e-9, 5e-9, 1e-9)
	mat := material.FeCoB()
	s, err := New(mesh, grid.FullRegion(mesh), mat, 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	s.SetAlphaProfile(func(i, j int) float64 { return 0.01 * float64(i+1) })
	if s.Alpha[0] != 0.01 || math.Abs(s.Alpha[9]-0.1) > 1e-12 {
		t.Errorf("alpha profile = %v", s.Alpha)
	}
	// Absorber at the right end raises damping there, not at the left.
	s.SetAlphaProfile(func(i, j int) float64 { return mat.Alpha })
	endX, endY := mesh.CellCenter(9, 0)
	s.AddAbsorberTowards(endX, endY, 20e-9, 0.5)
	if s.Alpha[9] < 0.4 {
		t.Errorf("absorber end alpha = %g, want near 0.5", s.Alpha[9])
	}
	if s.Alpha[0] != mat.Alpha {
		t.Errorf("absorber leaked to far end: %g", s.Alpha[0])
	}
	// Monotone decrease away from the absorber point.
	for i := 1; i < 10; i++ {
		if s.Alpha[i] < s.Alpha[i-1]-1e-12 {
			t.Errorf("absorber profile not monotone at %d: %v", i, s.Alpha)
		}
	}
}

func TestRunEarlyStop(t *testing.T) {
	s := singleSpin(t, 0.1, 0, 1e-13)
	count := 0
	s.Run(1e-9, func(step int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("early stop ran %d steps", count)
	}
	if s.Steps() != 5 {
		t.Errorf("Steps() = %d", s.Steps())
	}
}

func TestEnergyDissipationUnderDamping(t *testing.T) {
	// A tilted uniform state in the full FeCoB film must lose energy
	// monotonically (Lyapunov property of LLG with damping, no drive).
	mesh := grid.MustMesh(8, 4, 5e-9, 5e-9, 1e-9)
	mat := material.FeCoB()
	mat.Alpha = 0.05
	s, err := New(mesh, grid.FullRegion(mesh), mat, StableDt(mesh, mat))
	if err != nil {
		t.Fatal(err)
	}
	s.TiltM(0.5)
	prev := s.Eval.Energy(s.M)
	for k := 0; k < 20; k++ {
		s.Run(20e-12, nil)
		e := s.Eval.Energy(s.M)
		if e > prev+1e-25 {
			t.Fatalf("energy increased: %g -> %g at block %d", prev, e, k)
		}
		prev = e
	}
}

func TestSchemeString(t *testing.T) {
	if RK4.String() != "rk4" || Heun.String() != "heun" || Scheme(9).String() == "" {
		t.Error("scheme names wrong")
	}
}

func TestSetUniformMRespectsRegion(t *testing.T) {
	mesh := grid.MustMesh(2, 1, 1e-9, 1e-9, 1e-9)
	reg := grid.Region{true, false}
	s, err := New(mesh, reg, material.FeCoB(), 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	s.SetUniformM(vec.V(0, 0, 2))
	if s.M[0] != vec.UnitZ {
		t.Errorf("region cell m = %v", s.M[0])
	}
	if s.M[1] != vec.Zero {
		t.Errorf("vacuum cell m = %v", s.M[1])
	}
}

var benchSink float64

func BenchmarkStepRK4_64x64(b *testing.B) {
	mesh := grid.MustMesh(64, 64, 5e-9, 5e-9, 1e-9)
	mat := material.FeCoB()
	s, err := New(mesh, grid.FullRegion(mesh), mat, StableDt(mesh, mat))
	if err != nil {
		b.Fatal(err)
	}
	s.TiltM(0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	benchSink = s.M[0].X
	_ = units.Mu0
}

func BenchmarkStepHeun_64x64(b *testing.B) {
	mesh := grid.MustMesh(64, 64, 5e-9, 5e-9, 1e-9)
	mat := material.FeCoB()
	s, err := New(mesh, grid.FullRegion(mesh), mat, StableDt(mesh, mat))
	if err != nil {
		b.Fatal(err)
	}
	s.Scheme = Heun
	s.TiltM(0.05)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	benchSink = s.M[0].X
}

package llg

// Integration of the exact Newell-tensor demag with the LLG solver:
// the paper's film is thin enough that the local approximation is good,
// and these tests quantify exactly how good on solver-scale systems.

import (
	"math"
	"testing"

	"spinwave/internal/demag"
	"spinwave/internal/detect"
	"spinwave/internal/excite"
	"spinwave/internal/grid"
	"spinwave/internal/material"
	"spinwave/internal/vec"
)

// fmrFrequency relaxes nothing fancy: drive-free ringdown of a slightly
// tilted film patch, lock-in over the trailing window at the candidate
// frequency grid via spectrum peak.
func fmrFrequency(t *testing.T, full bool) float64 {
	t.Helper()
	mesh := grid.MustMesh(24, 24, 5e-9, 5e-9, 1e-9)
	mat := material.FeCoB()
	mat.Alpha = 0.002 // underdamped ringdown
	s, err := New(mesh, grid.FullRegion(mesh), mat, StableDt(mesh, mat))
	if err != nil {
		t.Fatal(err)
	}
	if full {
		k, err := demag.NewKernel(mesh, mat.Ms)
		if err != nil {
			t.Fatal(err)
		}
		s.Eval.FullDemag = k
	}
	s.TiltM(0.05)
	probe, err := detect.NewProbe("film", grid.FullRegion(mesh).Indices())
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1.5e-9, func(step int) bool {
		if step%4 == 0 {
			probe.Sample(s.Time, s.M)
		}
		return true
	})
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	// Count mean-crossings of <mx> to estimate the precession frequency.
	mx := probe.MX()
	times := probe.Times()
	crossings := 0
	var firstT, lastT float64
	for i := 1; i < len(mx); i++ {
		if mx[i-1] < 0 && mx[i] >= 0 {
			if crossings == 0 {
				firstT = times[i]
			}
			lastT = times[i]
			crossings++
		}
	}
	if crossings < 3 {
		t.Fatalf("too few oscillations: %d", crossings)
	}
	return float64(crossings-1) / (lastT - firstT)
}

func TestFullDemagFMRCloseToLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	fLocal := fmrFrequency(t, false)
	fFull := fmrFrequency(t, true)
	// The finite 120 nm patch has Nzz_eff < 1, so the full-demag FMR
	// frequency must sit ABOVE the local-approximation value (the demag
	// field opposing the anisotropy is weaker), but within ~25% for this
	// size.
	if fFull <= fLocal {
		t.Errorf("full-demag FMR %.3g not above local %.3g", fFull, fLocal)
	}
	if rel := (fFull - fLocal) / fLocal; rel > 0.6 {
		t.Errorf("full vs local FMR differ by %.0f%% — kernel suspect", 100*rel)
	}
	t.Logf("FMR: local %.2f GHz, full demag %.2f GHz", fLocal/1e9, fFull/1e9)
}

func TestFullDemagWavePropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	// A short strip with the exact demag still carries spin waves when
	// driven above its (higher) FMR; checks kernel stability inside the
	// time stepper.
	mesh := grid.MustMesh(96, 4, 5e-9, 5e-9, 1e-9)
	mat := material.FeCoB()
	s, err := New(mesh, grid.FullRegion(mesh), mat, StableDt(mesh, mat))
	if err != nil {
		t.Fatal(err)
	}
	k, err := demag.NewKernel(mesh, mat.Ms)
	if err != nil {
		t.Fatal(err)
	}
	s.Eval.FullDemag = k
	s.AddAbsorberTowards(mesh.SizeX(), mesh.SizeY()/2, 100e-9, 0.5)
	// Drive well above any plausible gap for this narrow strip.
	f := 25e9
	var cells []int
	for j := 0; j < mesh.Ny; j++ {
		cells = append(cells, mesh.Idx(2, j))
	}
	ant, err := excite.NewAntenna("src", cells, vec.UnitX, 2e-3, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	ant.Env = excite.RampEnvelope(3 / f)
	s.Eval.Sources = append(s.Eval.Sources, ant)
	s.Run(0.7e-9, nil)
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	maxAmp := 0.0
	for i := mesh.Idx(40, 1); i < mesh.Idx(70, 1); i++ {
		if a := math.Hypot(s.M[i].X, s.M[i].Y); a > maxAmp {
			maxAmp = a
		}
	}
	if maxAmp < 1e-5 {
		t.Errorf("no wave propagated under full demag: max %g", maxAmp)
	}
}

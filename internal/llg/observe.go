package llg

import "spinwave/internal/vec"

// StepObserver is the flight-recorder hook of the run loop (DESIGN.md
// §11): it receives a callback after every committed integrator step
// with the solver's cumulative step count, the new simulation time, and
// the magnetization. probe.Recorder implements it.
//
// The observer runs synchronously on the solver goroutine between
// steps, so implementations must be cheap and allocation-free to
// preserve the zero-alloc stepping loop, and must treat m as read-only
// and valid only for the duration of the call.
type StepObserver interface {
	ObserveStep(step int, t float64, m vec.Field)
}

// SetObserver installs the step observer; nil removes it. With no
// observer installed the run loop pays one nil check per step —
// observability is free when disabled.
func (s *Solver) SetObserver(o StepObserver) { s.obs = o }

// TeeObserver fans one step callback out to several observers in slice
// order — the composition glue that lets a probe recorder and a health
// monitor share the solver's single observer slot. Ranging over the
// slice allocates nothing, so a tee preserves each member's
// allocation-free contract.
type TeeObserver []StepObserver

// ObserveStep implements StepObserver by forwarding to every member.
func (t TeeObserver) ObserveStep(step int, time float64, m vec.Field) {
	for _, o := range t {
		o.ObserveStep(step, time, m)
	}
}

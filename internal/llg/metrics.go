package llg

import (
	"sync"

	"spinwave/internal/obs"
)

// Process-wide solver metrics in the obs default registry, registered
// lazily on the first RunContext so importing the package alone exports
// nothing. Step counts are accumulated per run and added once at the
// end — the integrator loop itself stays free of atomic traffic.
var (
	metricsOnce sync.Once

	mSteps       *obs.Counter
	mRuns        *obs.Counter
	mRunSeconds  *obs.Histogram
	mStepSeconds *obs.Histogram
	mBandSeconds *obs.Histogram
	mStepsPerSec *obs.Gauge
)

func initMetrics() {
	metricsOnce.Do(func() {
		r := obs.Default()
		r.Describe("spinwave_llg_steps_total", "integrator steps taken across all solvers")
		mSteps = r.Counter("spinwave_llg_steps_total")
		r.Describe("spinwave_llg_runs_total", "RunContext invocations (transients and pulses)")
		mRuns = r.Counter("spinwave_llg_runs_total")
		r.Describe("spinwave_llg_run_seconds", "wall-clock time of one RunContext call")
		mRunSeconds = r.Histogram("spinwave_llg_run_seconds", nil)
		r.Describe("spinwave_llg_step_seconds", "mean wall-clock time per integrator step, one observation per run")
		mStepSeconds = r.Histogram("spinwave_llg_step_seconds", []float64{
			1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1,
		})
		r.Describe("spinwave_llg_band_seconds", "wall-clock time of one band's fused stage kernel, sampled every 64 steps")
		mBandSeconds = r.Histogram("spinwave_llg_band_seconds", []float64{
			1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1,
		})
		r.Describe("spinwave_llg_steps_per_second", "integrator throughput of the most recent run")
		mStepsPerSec = r.Gauge("spinwave_llg_steps_per_second")
	})
}

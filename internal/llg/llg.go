// Package llg integrates the Landau–Lifshitz–Gilbert equation
//
//	dm/dt = −γ/(1+α²) · [ m×B + α·m×(m×B) ]
//
// (equation (1) of the paper in its explicit Landau–Lifshitz form) on the
// 2-D mesh of internal/grid, with the effective field supplied by an
// internal/mag.Evaluator. γ is in rad/(s·T) and B in Tesla.
//
// The damping constant is per-cell so that absorbing boundary layers
// (smoothly ramped α) can terminate waveguides without reflections.
// Two fixed-step schemes are provided: Heun (2 field evaluations/step) and
// classical RK4 (4 evaluations, default); magnetization is renormalized
// after every step.
package llg

import (
	"context"
	"fmt"
	"math"
	"time"

	"spinwave/internal/grid"
	"spinwave/internal/mag"
	"spinwave/internal/material"
	"spinwave/internal/vec"
)

// Scheme selects the time-integration method.
type Scheme int

const (
	// RK4 is the classical fourth-order Runge–Kutta scheme.
	RK4 Scheme = iota
	// Heun is the second-order predictor-corrector scheme; roughly twice
	// as fast per step but needs smaller steps for the same accuracy.
	Heun
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case RK4:
		return "rk4"
	case Heun:
		return "heun"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Solver advances the magnetization of one simulation in time.
type Solver struct {
	Mesh   grid.Mesh
	Region grid.Region
	Eval   *mag.Evaluator

	M     vec.Field // magnetization, unit vectors inside Region
	Alpha []float64 // per-cell Gilbert damping
	Gamma float64   // gyromagnetic ratio, rad/(s·T)

	Time   float64 // current simulation time, s
	Dt     float64 // fixed time step, s
	Scheme Scheme

	steps int

	// scratch buffers
	b, k1, k2, k3, k4 vec.Field
	mtmp              vec.Field
}

// New creates a solver for the given geometry and material, with the
// magnetization initialized along +z (the perpendicular ground state of
// the paper's PMA film) and uniform damping mat.Alpha.
func New(mesh grid.Mesh, region grid.Region, mat material.Params, dt float64) (*Solver, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("llg: time step %g must be positive", dt)
	}
	ev, err := mag.NewEvaluator(mesh, region, mat)
	if err != nil {
		return nil, err
	}
	n := mesh.NCells()
	s := &Solver{
		Mesh:   mesh,
		Region: region,
		Eval:   ev,
		M:      vec.NewField(n),
		Alpha:  make([]float64, n),
		Gamma:  mat.GammaOrDefault(),
		Dt:     dt,
		Scheme: RK4,
		b:      vec.NewField(n),
		k1:     vec.NewField(n),
		k2:     vec.NewField(n),
		k3:     vec.NewField(n),
		k4:     vec.NewField(n),
		mtmp:   vec.NewField(n),
	}
	for i := range s.Alpha {
		s.Alpha[i] = mat.Alpha
	}
	s.SetUniformM(vec.UnitZ)
	return s, nil
}

// SetUniformM sets the magnetization of every region cell to the unit
// vector along v and zeroes the rest.
func (s *Solver) SetUniformM(v vec.Vector) {
	u := v.Normalized()
	for i := range s.M {
		if s.Region[i] {
			s.M[i] = u
		} else {
			s.M[i] = vec.Zero
		}
	}
}

// TiltM rotates the magnetization of every region cell by angle θ about
// the y axis, giving the small transverse component tests use to start
// precession.
func (s *Solver) TiltM(theta float64) {
	c, sn := math.Cos(theta), math.Sin(theta)
	for i := range s.M {
		if !s.Region[i] {
			continue
		}
		m := s.M[i]
		s.M[i] = vec.V(c*m.X+sn*m.Z, m.Y, -sn*m.X+c*m.Z)
	}
}

// SetAlphaProfile sets the per-cell damping to f(i, j) over region cells.
func (s *Solver) SetAlphaProfile(f func(i, j int) float64) {
	for j := 0; j < s.Mesh.Ny; j++ {
		for i := 0; i < s.Mesh.Nx; i++ {
			idx := s.Mesh.Idx(i, j)
			if s.Region[idx] {
				s.Alpha[idx] = f(i, j)
			}
		}
	}
}

// AddAbsorberTowards raises damping smoothly (quadratic ramp) from the
// base value to maxAlpha for region cells within rampLen of point
// (px, py), emulating a matched termination at a waveguide end. Multiple
// absorbers combine by taking the maximum damping.
func (s *Solver) AddAbsorberTowards(px, py, rampLen, maxAlpha float64) {
	for j := 0; j < s.Mesh.Ny; j++ {
		for i := 0; i < s.Mesh.Nx; i++ {
			idx := s.Mesh.Idx(i, j)
			if !s.Region[idx] {
				continue
			}
			x, y := s.Mesh.CellCenter(i, j)
			d := math.Hypot(x-px, y-py)
			if d >= rampLen {
				continue
			}
			u := 1 - d/rampLen // 1 at the end point, 0 at ramp start
			a := s.Alpha[idx] + (maxAlpha-s.Alpha[idx])*u*u
			if a > s.Alpha[idx] {
				s.Alpha[idx] = a
			}
		}
	}
}

// torque writes dm/dt into dst for magnetization m and field b.
func (s *Solver) torque(m, b, dst vec.Field) {
	g := s.Gamma
	for i := range m {
		if !s.Region[i] {
			dst[i] = vec.Zero
			continue
		}
		a := s.Alpha[i]
		mxb := m[i].Cross(b[i])
		mxmxb := m[i].Cross(mxb)
		pref := -g / (1 + a*a)
		dst[i] = mxb.MAdd(a, mxmxb).Scale(pref)
	}
}

// rhs evaluates the field at (t, m) and writes the torque into dst.
func (s *Solver) rhs(t float64, m, dst vec.Field) {
	s.Eval.Field(t, m, s.b)
	s.torque(m, s.b, dst)
}

// Step advances the solver by one time step Dt.
func (s *Solver) Step() {
	dt, t := s.Dt, s.Time
	switch s.Scheme {
	case Heun:
		s.rhs(t, s.M, s.k1)
		s.mtmp.Copy(s.M)
		s.mtmp.AddScaled(dt, s.k1)
		s.rhs(t+dt, s.mtmp, s.k2)
		s.M.AddScaled(dt/2, s.k1)
		s.M.AddScaled(dt/2, s.k2)
	default: // RK4
		s.rhs(t, s.M, s.k1)
		s.mtmp.Copy(s.M)
		s.mtmp.AddScaled(dt/2, s.k1)
		s.rhs(t+dt/2, s.mtmp, s.k2)
		s.mtmp.Copy(s.M)
		s.mtmp.AddScaled(dt/2, s.k2)
		s.rhs(t+dt/2, s.mtmp, s.k3)
		s.mtmp.Copy(s.M)
		s.mtmp.AddScaled(dt, s.k3)
		s.rhs(t+dt, s.mtmp, s.k4)
		s.M.AddScaled(dt/6, s.k1)
		s.M.AddScaled(dt/3, s.k2)
		s.M.AddScaled(dt/3, s.k3)
		s.M.AddScaled(dt/6, s.k4)
	}
	s.renormalize()
	s.Time += dt
	s.steps++
}

func (s *Solver) renormalize() {
	for i := range s.M {
		if s.Region[i] {
			s.M[i] = s.M[i].Normalized()
		}
	}
}

// Steps returns the number of steps taken so far.
func (s *Solver) Steps() int { return s.steps }

// Run advances the solver by duration (rounded down to whole steps),
// invoking each (if non-nil) after every step with the step count taken
// during this Run call (starting at 1). If each returns false the run
// stops early.
func (s *Solver) Run(duration float64, each func(step int) bool) {
	_ = s.RunContext(context.Background(), duration, each)
}

// RunContext is Run with cancellation: the context is polled before every
// integrator step, so a cancelled or expired context aborts the
// integration within one step and returns ctx.Err(). The magnetization is
// left in its mid-run state; callers that abort should discard it.
func (s *Solver) RunContext(ctx context.Context, duration float64, each func(step int) bool) (err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	initMetrics()
	start := time.Now()
	taken := 0
	defer func() {
		elapsed := time.Since(start).Seconds()
		mRuns.Inc()
		mSteps.Add(int64(taken))
		mRunSeconds.Observe(elapsed)
		if taken > 0 {
			mStepSeconds.Observe(elapsed / float64(taken))
		}
	}()
	done := ctx.Done()
	n := int(duration / s.Dt)
	for i := 1; i <= n; i++ {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
		s.Step()
		taken = i
		if each != nil && !each(i) {
			return nil
		}
	}
	return ctx.Err()
}

// CheckFinite returns an error naming the first cell whose magnetization
// is not finite — the standard "simulation blew up" diagnostic.
func (s *Solver) CheckFinite() error {
	for i := range s.M {
		if s.Region[i] && !s.M[i].IsFinite() {
			ci, cj := s.Mesh.Coord(i)
			return fmt.Errorf("llg: non-finite magnetization at cell (%d,%d) after %d steps", ci, cj, s.steps)
		}
	}
	return nil
}

// StableDt estimates a conservative stable fixed step for RK4 from the
// largest field any cell can experience: the worst-case exchange field of
// fully antiparallel neighbors plus the static anisotropy and demag terms.
// The returned value includes a safety factor of 0.35.
func StableDt(mesh grid.Mesh, mat material.Params) float64 {
	c := mag.CoeffsFor(mat)
	bex := c.ExFactor * (4/(mesh.Dx*mesh.Dx) + 4/(mesh.Dy*mesh.Dy))
	bmax := bex + math.Abs(c.BAnis) + c.BDemag
	wmax := mat.GammaOrDefault() * bmax
	// RK4 linear stability limit is |λ|·dt ≈ 2.8 on the imaginary axis.
	return 0.35 * 2.8 / wmax
}

// Package llg integrates the Landau–Lifshitz–Gilbert equation
//
//	dm/dt = −γ/(1+α²) · [ m×B + α·m×(m×B) ]
//
// (equation (1) of the paper, §II-C, in its explicit Landau–Lifshitz
// form) on the 2-D mesh of internal/grid, with the effective field
// supplied by an internal/mag.Evaluator. Units are SI per
// internal/units: γ in rad/(s·T), B in Tesla, time in seconds.
//
// The damping constant is per-cell so that absorbing boundary layers
// (smoothly ramped α) can terminate waveguides without reflections.
// Two fixed-step schemes are provided — Heun (2 field evaluations/step)
// and classical RK4 (4 evaluations, default) — plus the adaptive
// Bogacki–Shampine RK23 pair (RunAdaptive). Magnetization is
// renormalized after every accepted step.
//
// # Stepping cores
//
// Step normally runs the tiled fused core (parallel.go): each RK stage
// is a single pass over precomputed active-cell runs that evaluates the
// local field, overlays sources, computes the torque and applies the
// stage update, optionally split across a persistent worker pool
// (SetWorkers) in horizontal row bands. StepReference is the original
// term-by-term stepper, kept verbatim as the benchmark baseline and as
// the execution path when a full demag convolution is installed.
// Trajectories are bit-for-bit identical across worker counts; the
// fused and reference cores agree to floating-point round-off
// (see DESIGN.md §10).
//
// # Concurrency
//
// A Solver is driven by one goroutine at a time; distinct Solvers are
// independent (they share no mutable state) and may run concurrently,
// each with its own worker pool. Callers that enable SetWorkers(n > 1)
// must Close the solver to release the pool goroutines.
package llg

import (
	"context"
	"fmt"
	"math"
	"time"

	"spinwave/internal/grid"
	"spinwave/internal/mag"
	"spinwave/internal/material"
	"spinwave/internal/tile"
	"spinwave/internal/vec"
)

// Scheme selects the time-integration method.
type Scheme int

const (
	// RK4 is the classical fourth-order Runge–Kutta scheme.
	RK4 Scheme = iota
	// Heun is the second-order predictor-corrector scheme; roughly twice
	// as fast per step but needs smaller steps for the same accuracy.
	Heun
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case RK4:
		return "rk4"
	case Heun:
		return "heun"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// scratchFields is the number of mesh-sized buffers carved from the
// solver's arena: b, k1..k4, kerr, mtmp, mtmp2, srcB.
const scratchFields = 9

// Solver advances the magnetization of one simulation in time.
type Solver struct {
	Mesh   grid.Mesh
	Region grid.Region
	Eval   *mag.Evaluator

	M     vec.Field // magnetization, unit vectors inside Region
	Alpha []float64 // per-cell Gilbert damping
	Gamma float64   // gyromagnetic ratio, rad/(s·T)

	Time   float64 // current simulation time, s
	Dt     float64 // fixed time step, s
	Scheme Scheme

	// UseReference forces the term-by-term reference stepper
	// (StepReference) for every step. It exists for benchmarking the
	// fused core against the original implementation and for debugging;
	// production runs leave it false.
	UseReference bool

	// RunID identifies the evaluation this solver serves; it is stamped
	// onto journal events emitted at solver level (adaptive step stats)
	// so they correlate with the run's lifecycle events and spans.
	RunID string

	steps int

	// obs, when non-nil, receives a callback after every committed
	// integrator step (see SetObserver).
	obs StepObserver

	// Scratch buffers, all carved from one arena allocation. b holds the
	// effective field, k1..k4 the RK stage slopes, kerr the adaptive
	// error stage, mtmp/mtmp2 the ping-pong stage inputs, and srcB the
	// sparse-source overlay.
	arena             *vec.Arena
	b, k1, k2, k3, k4 vec.Field
	kerr              vec.Field
	mtmp, mtmp2       vec.Field
	srcB              vec.Field

	// Fused-stepping state (parallel.go), rebuilt by ensurePrep when
	// prepared is false.
	workers      int
	pool         *tile.Pool
	bands        []tile.Band
	prepared     bool
	runs         *grid.RunSet
	alphaPref    []float64 // −γ/(1+α²) per cell
	cellSrcs     []mag.CellSource
	sparseSrcs   []mag.SparseSource
	otherSrcs    []mag.Source
	srcCells     []int   // union of sparse-source cells, deduplicated
	srcCellsBand [][]int // srcCells split by band
	errPart      []float64
	timeBands    bool

	// Prebuilt pass closures and in-flight stage parameters; reusing
	// them keeps the steady-state stepping loop allocation-free.
	passRK4, passHeun, passBS23 func(int)
	st                          stage
}

// New creates a solver for the given geometry and material, with the
// magnetization initialized along +z (the perpendicular ground state of
// the paper's PMA film) and uniform damping mat.Alpha.
func New(mesh grid.Mesh, region grid.Region, mat material.Params, dt float64) (*Solver, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("llg: time step %g must be positive", dt)
	}
	ev, err := mag.NewEvaluator(mesh, region, mat)
	if err != nil {
		return nil, err
	}
	n := mesh.NCells()
	arena := vec.NewArena(scratchFields, n)
	s := &Solver{
		Mesh:    mesh,
		Region:  region,
		Eval:    ev,
		M:       vec.NewField(n),
		Alpha:   make([]float64, n),
		Gamma:   mat.GammaOrDefault(),
		Dt:      dt,
		Scheme:  RK4,
		workers: 1,
		arena:   arena,
		b:       arena.Field(),
		k1:      arena.Field(),
		k2:      arena.Field(),
		k3:      arena.Field(),
		k4:      arena.Field(),
		kerr:    arena.Field(),
		mtmp:    arena.Field(),
		mtmp2:   arena.Field(),
		srcB:    arena.Field(),
	}
	s.passRK4 = func(bi int) { s.rk4Band(bi) }
	s.passHeun = func(bi int) { s.heunBand(bi) }
	s.passBS23 = func(bi int) { s.bs23Band(bi) }
	for i := range s.Alpha {
		s.Alpha[i] = mat.Alpha
	}
	s.SetUniformM(vec.UnitZ)
	return s, nil
}

// SetUniformM sets the magnetization of every region cell to the unit
// vector along v and zeroes the rest.
func (s *Solver) SetUniformM(v vec.Vector) {
	u := v.Normalized()
	for i := range s.M {
		if s.Region[i] {
			s.M[i] = u
		} else {
			s.M[i] = vec.Zero
		}
	}
}

// TiltM rotates the magnetization of every region cell by angle θ about
// the y axis, giving the small transverse component tests use to start
// precession.
func (s *Solver) TiltM(theta float64) {
	c, sn := math.Cos(theta), math.Sin(theta)
	for i := range s.M {
		if !s.Region[i] {
			continue
		}
		m := s.M[i]
		s.M[i] = vec.V(c*m.X+sn*m.Z, m.Y, -sn*m.X+c*m.Z)
	}
}

// SetAlphaProfile sets the per-cell damping to f(i, j) over region cells.
func (s *Solver) SetAlphaProfile(f func(i, j int) float64) {
	for j := 0; j < s.Mesh.Ny; j++ {
		for i := 0; i < s.Mesh.Nx; i++ {
			idx := s.Mesh.Idx(i, j)
			if s.Region[idx] {
				s.Alpha[idx] = f(i, j)
			}
		}
	}
	s.prepared = false
}

// AddAbsorberTowards raises damping smoothly (quadratic ramp) from the
// base value to maxAlpha for region cells within rampLen of point
// (px, py), emulating a matched termination at a waveguide end. Multiple
// absorbers combine by taking the maximum damping.
func (s *Solver) AddAbsorberTowards(px, py, rampLen, maxAlpha float64) {
	for j := 0; j < s.Mesh.Ny; j++ {
		for i := 0; i < s.Mesh.Nx; i++ {
			idx := s.Mesh.Idx(i, j)
			if !s.Region[idx] {
				continue
			}
			x, y := s.Mesh.CellCenter(i, j)
			d := math.Hypot(x-px, y-py)
			if d >= rampLen {
				continue
			}
			u := 1 - d/rampLen // 1 at the end point, 0 at ramp start
			a := s.Alpha[idx] + (maxAlpha-s.Alpha[idx])*u*u
			if a > s.Alpha[idx] {
				s.Alpha[idx] = a
			}
		}
	}
	s.prepared = false
}

// torque writes dm/dt into dst for magnetization m and field b.
func (s *Solver) torque(m, b, dst vec.Field) {
	g := s.Gamma
	for i := range m {
		if !s.Region[i] {
			dst[i] = vec.Zero
			continue
		}
		a := s.Alpha[i]
		mxb := m[i].Cross(b[i])
		mxmxb := m[i].Cross(mxb)
		pref := -g / (1 + a*a)
		dst[i] = mxb.MAdd(a, mxmxb).Scale(pref)
	}
}

// rhs evaluates the field at (t, m) and writes the torque into dst.
func (s *Solver) rhs(t float64, m, dst vec.Field) {
	s.Eval.Field(t, m, s.b)
	s.torque(m, s.b, dst)
}

// Step advances the solver by one time step Dt using the fused tiled
// core, falling back to the reference stepper when UseReference is set
// or a full demag convolution is installed (the exact convolution is a
// global operation the banded kernels cannot fuse).
func (s *Solver) Step() {
	if s.UseReference || s.Eval.FullDemag != nil {
		s.StepReference()
		return
	}
	s.stepFused()
}

// StepReference advances one time step with the original term-by-term
// implementation: full-field sweeps for every RK stage via
// mag.Evaluator.Field, separate AddScaled/Copy passes for the stage
// updates, and a final renormalization sweep. It is retained verbatim
// as the baseline the fused core is benchmarked and regression-tested
// against; the two agree to floating-point round-off.
func (s *Solver) StepReference() {
	dt, t := s.Dt, s.Time
	switch s.Scheme {
	case Heun:
		s.rhs(t, s.M, s.k1)
		s.mtmp.Copy(s.M)
		s.mtmp.AddScaled(dt, s.k1)
		s.rhs(t+dt, s.mtmp, s.k2)
		s.M.AddScaled(dt/2, s.k1)
		s.M.AddScaled(dt/2, s.k2)
	default: // RK4
		s.rhs(t, s.M, s.k1)
		s.mtmp.Copy(s.M)
		s.mtmp.AddScaled(dt/2, s.k1)
		s.rhs(t+dt/2, s.mtmp, s.k2)
		s.mtmp.Copy(s.M)
		s.mtmp.AddScaled(dt/2, s.k2)
		s.rhs(t+dt/2, s.mtmp, s.k3)
		s.mtmp.Copy(s.M)
		s.mtmp.AddScaled(dt, s.k3)
		s.rhs(t+dt, s.mtmp, s.k4)
		s.M.AddScaled(dt/6, s.k1)
		s.M.AddScaled(dt/3, s.k2)
		s.M.AddScaled(dt/3, s.k3)
		s.M.AddScaled(dt/6, s.k4)
	}
	s.renormalize()
	s.Time += dt
	s.steps++
}

func (s *Solver) renormalize() {
	for i := range s.M {
		if s.Region[i] {
			s.M[i] = s.M[i].Normalized()
		}
	}
}

// Steps returns the number of steps taken so far.
func (s *Solver) Steps() int { return s.steps }

// Restore overwrites the integrator state from a checkpoint: the
// magnetization (copied), the simulation time, the committed step count
// and the step size. It deliberately performs no renormalization — exact
// resume (DESIGN.md §15) must reproduce the stored bits untouched, and a
// checkpointed field is already normalized by the step that produced it.
func (s *Solver) Restore(m vec.Field, time float64, steps int, dt float64) error {
	if len(m) != len(s.M) {
		return fmt.Errorf("llg: restore field has %d cells, solver has %d", len(m), len(s.M))
	}
	if dt <= 0 {
		return fmt.Errorf("llg: restore time step %g must be positive", dt)
	}
	if steps < 0 {
		return fmt.Errorf("llg: restore step count %d must be non-negative", steps)
	}
	s.M.Copy(m)
	s.Time = time
	s.steps = steps
	s.Dt = dt
	return nil
}

// Run advances the solver by duration (rounded down to whole steps),
// invoking each (if non-nil) after every step with the step count taken
// during this Run call (starting at 1). If each returns false the run
// stops early.
func (s *Solver) Run(duration float64, each func(step int) bool) {
	_ = s.RunContext(context.Background(), duration, each)
}

// RunContext is Run with cancellation: the context is polled before every
// integrator step, so a cancelled or expired context aborts the
// integration within one step and returns ctx.Err(). The magnetization is
// left in its mid-run state; callers that abort should discard it.
func (s *Solver) RunContext(ctx context.Context, duration float64, each func(step int) bool) (err error) {
	return s.RunSteps(ctx, int(duration/s.Dt), each)
}

// RunSteps advances the solver by exactly n fixed steps — the
// resume-exact variant of RunContext. A resumed run must continue with
// `total − done` steps counted from the checkpoint, not with a duration:
// recomputing int(duration/Dt) against a mid-run Time can gain or lose a
// step to float rounding, and one step is all it takes to break
// bit-identical resume (DESIGN.md §15). each (if non-nil) is invoked
// after every committed step with the per-call step index (starting at
// 1); returning false stops the run early with the solver state
// consistent for a later resume.
func (s *Solver) RunSteps(ctx context.Context, n int, each func(step int) bool) (err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	initMetrics()
	start := time.Now()
	taken := 0
	defer func() {
		elapsed := time.Since(start).Seconds()
		mRuns.Inc()
		mSteps.Add(int64(taken))
		mRunSeconds.Observe(elapsed)
		if taken > 0 {
			mStepSeconds.Observe(elapsed / float64(taken))
			if elapsed > 0 {
				mStepsPerSec.Set(float64(taken) / elapsed)
			}
		}
	}()
	done := ctx.Done()
	for i := 1; i <= n; i++ {
		select {
		case <-done:
			return ctx.Err()
		default:
		}
		s.Step()
		taken = i
		if s.obs != nil {
			s.obs.ObserveStep(s.steps, s.Time, s.M)
		}
		if each != nil && !each(i) {
			return nil
		}
	}
	return ctx.Err()
}

// CheckFinite returns an error naming the first cell whose magnetization
// is not finite — the standard "simulation blew up" diagnostic.
func (s *Solver) CheckFinite() error {
	for i := range s.M {
		if s.Region[i] && !s.M[i].IsFinite() {
			ci, cj := s.Mesh.Coord(i)
			return fmt.Errorf("llg: non-finite magnetization at cell (%d,%d) after %d steps", ci, cj, s.steps)
		}
	}
	return nil
}

// StableDt estimates a conservative stable fixed step for RK4 from the
// largest field any cell can experience: the worst-case exchange field of
// fully antiparallel neighbors plus the static anisotropy and demag terms.
// The returned value includes a safety factor of 0.35.
func StableDt(mesh grid.Mesh, mat material.Params) float64 {
	c := mag.CoeffsFor(mat)
	bex := c.ExFactor * (4/(mesh.Dx*mesh.Dx) + 4/(mesh.Dy*mesh.Dy))
	bmax := bex + math.Abs(c.BAnis) + c.BDemag
	wmax := mat.GammaOrDefault() * bmax
	// RK4 linear stability limit is |λ|·dt ≈ 2.8 on the imaginary axis.
	return 0.35 * 2.8 / wmax
}

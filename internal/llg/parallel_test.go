package llg

import (
	"math"
	"testing"

	"spinwave/internal/excite"
	"spinwave/internal/grid"
	"spinwave/internal/material"
	"spinwave/internal/thermal"
	"spinwave/internal/vec"
)

// parallelTestSolver builds a small 2-D waveguide with every source kind
// the fused stepper handles specially: an antenna (sparse overlay), a
// thermal field (per-cell source), a non-uniform damping profile and a
// notch cut out of the region so the run geometry is non-trivial.
func parallelTestSolver(t *testing.T, workers int, scheme Scheme) *Solver {
	t.Helper()
	mesh := grid.MustMesh(40, 16, 5e-9, 5e-9, 1e-9)
	region := grid.FullRegion(mesh)
	// A notch: rows 6–9 lose cells 10–14, producing multiple runs per row.
	for j := 6; j < 10; j++ {
		for i := 10; i < 15; i++ {
			region[mesh.Idx(i, j)] = false
		}
	}
	mat := material.FeCoB()
	s, err := New(mesh, region, mat, StableDt(mesh, mat))
	if err != nil {
		t.Fatal(err)
	}
	s.Scheme = scheme
	s.TiltM(0.02)
	s.AddAbsorberTowards(mesh.SizeX(), mesh.SizeY()/2, 80e-9, 0.5)

	// Antenna straddling a band boundary for every worker count tested.
	cells := []int{mesh.Idx(4, 7), mesh.Idx(4, 8), mesh.Idx(5, 7), mesh.Idx(5, 8)}
	ant, err := excite.NewAntenna("src", cells, vec.UnitX, 2e-3, 15e9, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.Eval.Sources = append(s.Eval.Sources, ant)

	th, err := thermal.New(mesh, region, mat, 50, s.Dt, 7)
	if err != nil {
		t.Fatal(err)
	}
	s.Eval.Sources = append(s.Eval.Sources, th)

	s.SetWorkers(workers)
	return s
}

// TestWorkerCountInvariance is the regression test for the tiled core's
// central promise: the magnetization trajectory is bit-for-bit identical
// for every worker count (ISSUE 3 acceptance criterion). Exact float64
// equality, no tolerance.
func TestWorkerCountInvariance(t *testing.T) {
	for _, scheme := range []Scheme{RK4, Heun} {
		base := parallelTestSolver(t, 1, scheme)
		for step := 0; step < 40; step++ {
			base.Step()
		}
		for _, workers := range []int{2, 3, 8} {
			s := parallelTestSolver(t, workers, scheme)
			for step := 0; step < 40; step++ {
				s.Step()
			}
			s.Close()
			for c := range base.M {
				if base.M[c] != s.M[c] {
					t.Fatalf("%v: cell %d diverged with %d workers: %v vs %v",
						scheme, c, workers, base.M[c], s.M[c])
				}
			}
			if base.Time != s.Time {
				t.Fatalf("%v: time diverged: %g vs %g", scheme, base.Time, s.Time)
			}
		}
	}
}

// TestWorkerCountInvarianceAdaptive extends the bit-identity pin to the
// adaptive stepper: the ∞-norm error reduction is merged from fixed
// per-band partials, so accept/reject decisions and step sizes must
// match exactly too.
func TestWorkerCountInvarianceAdaptive(t *testing.T) {
	base := parallelTestSolver(t, 1, RK4)
	a1, r1, err := base.RunAdaptive(30*base.Dt, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		s := parallelTestSolver(t, workers, RK4)
		a2, r2, err := s.RunAdaptive(30*s.Dt, AdaptiveConfig{})
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
		if a1 != a2 || r1 != r2 {
			t.Fatalf("step counts diverged with %d workers: %d/%d vs %d/%d", workers, a1, r1, a2, r2)
		}
		if base.Dt != s.Dt || base.Time != s.Time {
			t.Fatalf("dt/time diverged with %d workers", workers)
		}
		for c := range base.M {
			if base.M[c] != s.M[c] {
				t.Fatalf("adaptive: cell %d diverged with %d workers: %v vs %v",
					c, workers, base.M[c], s.M[c])
			}
		}
	}
}

// TestFusedMatchesReference compares the fused core against the retained
// term-by-term reference stepper. The two reorder floating-point
// operations (fused field assembly, register-held k4), so agreement is
// to round-off, not bit-exact — but after 40 steps of a driven, damped
// run the trajectories must still be extremely close.
func TestFusedMatchesReference(t *testing.T) {
	for _, scheme := range []Scheme{RK4, Heun} {
		fused := parallelTestSolver(t, 1, scheme)
		ref := parallelTestSolver(t, 1, scheme)
		ref.UseReference = true
		for step := 0; step < 40; step++ {
			fused.Step()
			ref.Step()
		}
		worst := 0.0
		for c := range fused.M {
			if d := fused.M[c].Sub(ref.M[c]).Norm(); d > worst {
				worst = d
			}
		}
		if worst > 1e-10 {
			t.Errorf("%v: fused vs reference max |Δm| = %g, want <= 1e-10", scheme, worst)
		}
		if math.Abs(fused.Time-ref.Time) > 1e-25 {
			t.Errorf("%v: time diverged", scheme)
		}
	}
}

// TestOneRowGridWithWorkers pins the degenerate banding case: a 1-row
// waveguide with more workers than rows must run (one band) and stay
// bit-identical to serial.
func TestOneRowGridWithWorkers(t *testing.T) {
	build := func(workers int) *Solver {
		mesh := grid.MustMesh(64, 1, 5e-9, 5e-9, 1e-9)
		mat := material.FeCoB()
		s, err := New(mesh, grid.FullRegion(mesh), mat, StableDt(mesh, mat))
		if err != nil {
			t.Fatal(err)
		}
		s.TiltM(0.05)
		s.SetWorkers(workers)
		return s
	}
	serial := build(1)
	parallel := build(8)
	defer parallel.Close()
	for step := 0; step < 25; step++ {
		serial.Step()
		parallel.Step()
	}
	for c := range serial.M {
		if serial.M[c] != parallel.M[c] {
			t.Fatalf("1-row grid diverged at cell %d", c)
		}
	}
}

// TestStepAllocates pins the zero-alloc hot loop: after warm-up, a fused
// step must not allocate — serial or banded (the pool reuses its wait
// group and prebuilt kernel closures).
func TestStepAllocates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		s := parallelTestSolver(t, workers, RK4)
		s.Step() // warm up: builds prep state lazily
		allocs := testing.AllocsPerRun(10, func() { s.Step() })
		s.Close()
		if allocs > 0 {
			t.Errorf("workers=%d: %g allocs per step, want 0", workers, allocs)
		}
	}
}

// TestSetWorkersLifecycle exercises reconfiguration: switching worker
// counts mid-run must rebuild the bands, keep stepping correct, and not
// leak pools (Close after each switch is the owner's job — SetWorkers
// replaces the pool itself).
func TestSetWorkersLifecycle(t *testing.T) {
	s := parallelTestSolver(t, 1, RK4)
	for step := 0; step < 5; step++ {
		s.Step()
	}
	s.SetWorkers(4)
	for step := 0; step < 5; step++ {
		s.Step()
	}
	s.SetWorkers(2)
	for step := 0; step < 5; step++ {
		s.Step()
	}
	s.Close()
	// After Close the solver must keep working serially.
	for step := 0; step < 5; step++ {
		s.Step()
	}
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}
	if s.Steps() != 20 {
		t.Fatalf("steps = %d, want 20", s.Steps())
	}
}

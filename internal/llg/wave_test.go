package llg

// Integration tests that validate the solver against spin-wave physics:
// a driven waveguide strip must carry a propagating wave whose wavelength
// matches the LocalDemag dispersion branch, and two coherent sources must
// interfere constructively/destructively according to their relative
// phase — the physical mechanism every gate in the paper relies on.

import (
	"math"
	"testing"

	"spinwave/internal/detect"
	"spinwave/internal/dispersion"
	"spinwave/internal/excite"
	"spinwave/internal/grid"
	"spinwave/internal/material"
	"spinwave/internal/units"
	"spinwave/internal/vec"
)

// strip builds an Nx-cell, 1-cell-wide FeCoB waveguide with absorbing ends.
func strip(t *testing.T, nx int) (*Solver, grid.Mesh) {
	t.Helper()
	mesh := grid.MustMesh(nx, 1, 5e-9, 5e-9, 1e-9)
	mat := material.FeCoB()
	s, err := New(mesh, grid.FullRegion(mesh), mat, StableDt(mesh, mat))
	if err != nil {
		t.Fatal(err)
	}
	// Absorbers over ~120 nm at both ends.
	s.AddAbsorberTowards(0, mesh.Dy/2, 120e-9, 0.5)
	s.AddAbsorberTowards(mesh.SizeX(), mesh.Dy/2, 120e-9, 0.5)
	return s, mesh
}

func driveFrequency(t *testing.T) float64 {
	t.Helper()
	model, err := dispersion.New(material.FeCoB(), units.NM(1), dispersion.LocalDemag)
	if err != nil {
		t.Fatal(err)
	}
	return model.FrequencyForWavelength(units.NM(55))
}

func TestPropagatingWaveMatchesDispersion(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	s, mesh := strip(t, 200) // 1 µm strip
	f := driveFrequency(t)

	ant, err := excite.NewAntenna("src", []int{mesh.Idx(28, 0), mesh.Idx(29, 0)},
		vec.UnitX, 2e-3, f, 0)
	if err != nil {
		t.Fatal(err)
	}
	ant.Env = excite.RampEnvelope(3 / f)
	s.Eval.Sources = append(s.Eval.Sources, ant)

	s.Run(0.9e-9, nil)
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}

	// Extract the spatial phase profile φ(x) = atan2(my, mx) in a window
	// away from source and absorbers, unwrap it, and fit k = |dφ/dx|.
	i0, i1 := 45, 140
	var phases []float64
	var amps []float64
	for i := i0; i <= i1; i++ {
		m := s.M[mesh.Idx(i, 0)]
		phases = append(phases, math.Atan2(m.Y, m.X))
		amps = append(amps, math.Hypot(m.X, m.Y))
	}
	// The wave must actually be there.
	var maxAmp float64
	for _, a := range amps {
		if a > maxAmp {
			maxAmp = a
		}
	}
	if maxAmp < 1e-4 {
		t.Fatalf("no propagating wave: max in-plane amplitude %g", maxAmp)
	}
	if maxAmp > 0.5 {
		t.Fatalf("wave amplitude %g beyond linear regime", maxAmp)
	}
	// Unwrap and linear fit.
	unwrapped := make([]float64, len(phases))
	unwrapped[0] = phases[0]
	for i := 1; i < len(phases); i++ {
		d := phases[i] - phases[i-1]
		for d > math.Pi {
			d -= 2 * math.Pi
		}
		for d < -math.Pi {
			d += 2 * math.Pi
		}
		unwrapped[i] = unwrapped[i-1] + d
	}
	n := float64(len(unwrapped))
	var sx, sy, sxx, sxy float64
	for i, p := range unwrapped {
		x := float64(i) * mesh.Dx
		sx += x
		sy += p
		sxx += x * x
		sxy += x * p
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx)
	lambda := 2 * math.Pi / math.Abs(slope)
	if math.Abs(lambda-55e-9) > 7e-9 {
		t.Errorf("measured λ = %.2f nm, want 55 ± 7", lambda*1e9)
	}
}

func TestCoherentInterference(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic integration test")
	}
	f := driveFrequency(t)
	// Two sources separated by exactly 2λ = 110 nm = 22 cells. A detector
	// downstream sees their superposition: equal phases add, opposite
	// phases cancel (paper Figure 2).
	run := func(phase2 float64) float64 {
		s, mesh := strip(t, 200)
		a1, err := excite.NewAntenna("i1", []int{mesh.Idx(30, 0)}, vec.UnitX, 2e-3, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := excite.NewAntenna("i2", []int{mesh.Idx(52, 0)}, vec.UnitX, 2e-3, f, phase2)
		if err != nil {
			t.Fatal(err)
		}
		a1.Env = excite.RampEnvelope(3 / f)
		a2.Env = excite.RampEnvelope(3 / f)
		s.Eval.Sources = append(s.Eval.Sources, a1, a2)

		probe, err := detect.NewProbe("o", []int{mesh.Idx(120, 0)})
		if err != nil {
			t.Fatal(err)
		}
		sampleEvery := 2
		s.Run(0.9e-9, func(step int) bool {
			if step%sampleEvery == 0 {
				probe.Sample(s.Time, s.M)
			}
			return true
		})
		if err := s.CheckFinite(); err != nil {
			t.Fatal(err)
		}
		r, err := probe.LockIn(f, 4)
		if err != nil {
			t.Fatal(err)
		}
		return r.Amplitude
	}

	constructive := run(0)
	destructive := run(math.Pi)
	if constructive < 1e-4 {
		t.Fatalf("constructive amplitude too small: %g", constructive)
	}
	if destructive > 0.35*constructive {
		t.Errorf("destructive/constructive = %g/%g = %.2f, want < 0.35",
			destructive, constructive, destructive/constructive)
	}
}

package llg

import (
	"math"
	"testing"

	"spinwave/internal/grid"
	"spinwave/internal/material"
	"spinwave/internal/vec"
)

func TestRunAdaptiveValidation(t *testing.T) {
	s := singleSpin(t, 0.3, 0.01, 1e-13)
	if _, _, err := s.RunAdaptive(0, AdaptiveConfig{}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, _, err := s.RunAdaptive(1e-9, AdaptiveConfig{MinDt: 1, MaxDt: 0.5}); err == nil {
		t.Error("inverted step bounds accepted")
	}
}

func TestAdaptiveMatchesFixedStep(t *testing.T) {
	// Same damped precession integrated by fixed RK4 and adaptive RK23
	// must land on (nearly) the same magnetization.
	fixed := singleSpin(t, 0.4, 0.02, 20e-15)
	adaptive := singleSpin(t, 0.4, 0.02, 20e-15)
	fixed.TiltM(0.4)
	adaptive.TiltM(0.4)

	fixed.Run(0.5e-9, nil)
	acc, rej, err := adaptive.RunAdaptive(0.5e-9, AdaptiveConfig{MaxErr: 1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if acc == 0 {
		t.Fatal("no accepted steps")
	}
	if d := fixed.M[0].Sub(adaptive.M[0]).Norm(); d > 5e-4 {
		t.Errorf("adaptive deviates from fixed by %g (acc=%d rej=%d)", d, acc, rej)
	}
	if math.Abs(adaptive.Time-0.5e-9) > 1e-15 {
		t.Errorf("adaptive time = %g, want 0.5 ns", adaptive.Time)
	}
	if math.Abs(adaptive.M[0].Norm()-1) > 1e-9 {
		t.Error("adaptive lost normalization")
	}
}

func TestAdaptiveTakesFewerStepsWhenSlow(t *testing.T) {
	// Strongly damped spin nearly aligned with the field: dynamics decay
	// quickly, so the controller should grow dt far beyond the initial
	// conservative estimate.
	s := singleSpin(t, 0.2, 0.5, 20e-15)
	s.TiltM(0.05)
	acc, _, err := s.RunAdaptive(2e-9, AdaptiveConfig{MaxErr: 1e-5})
	if err != nil {
		t.Fatal(err)
	}
	fixedSteps := int(2e-9 / 20e-15)
	if acc >= fixedSteps/4 {
		t.Errorf("adaptive used %d steps, fixed would use %d — no speedup", acc, fixedSteps)
	}
	if s.Dt <= 20e-15 {
		t.Errorf("final dt %g did not grow", s.Dt)
	}
	if s.M[0].Z < 0.999 {
		t.Errorf("did not relax: mz=%g", s.M[0].Z)
	}
}

func TestAdaptiveRejectsWhenToleranceTight(t *testing.T) {
	s := singleSpin(t, 1.0, 0.01, 2e-12) // deliberately huge initial dt
	s.TiltM(0.5)
	acc, rej, err := s.RunAdaptive(0.1e-9, AdaptiveConfig{MaxErr: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if rej == 0 {
		t.Errorf("expected rejected steps with oversized dt (acc=%d)", acc)
	}
	if err := s.CheckFinite(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveOnFilmRelaxation(t *testing.T) {
	// Multi-cell film with exchange: tilted state relaxes to +z; the
	// adaptive run must preserve |m| = 1 everywhere and dissipate energy.
	mesh := grid.MustMesh(8, 4, 5e-9, 5e-9, 1e-9)
	mat := material.FeCoB()
	mat.Alpha = 0.1
	s, err := New(mesh, grid.FullRegion(mesh), mat, StableDt(mesh, mat))
	if err != nil {
		t.Fatal(err)
	}
	s.TiltM(0.6)
	e0 := s.Eval.Energy(s.M)
	if _, _, err := s.RunAdaptive(1e-9, AdaptiveConfig{}); err != nil {
		t.Fatal(err)
	}
	if e1 := s.Eval.Energy(s.M); e1 > e0 {
		t.Errorf("energy increased: %g -> %g", e0, e1)
	}
	for i := range s.M {
		if math.Abs(s.M[i].Norm()-1) > 1e-9 {
			t.Fatalf("cell %d lost normalization: %g", i, s.M[i].Norm())
		}
	}
	avg := vec.Field(s.M).Average(nil)
	if avg.Z < 0.99 {
		t.Errorf("film did not relax: <mz> = %g", avg.Z)
	}
}

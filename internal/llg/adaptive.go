package llg

import (
	"fmt"
	"math"

	"spinwave/internal/journal"
	"spinwave/internal/tile"
)

// AdaptiveConfig tunes the embedded Bogacki–Shampine (RK23) adaptive
// stepper, the same error-controlled approach MuMax3 defaults to.
type AdaptiveConfig struct {
	// MaxErr is the per-step magnetization error tolerance (default
	// 1e-5, MuMax3's default).
	MaxErr float64
	// MinDt and MaxDt bound the step size (defaults: Dt/100 and 10·Dt
	// of the solver at Run time).
	MinDt, MaxDt float64
	// Headroom is the safety factor on the step-size update (default
	// 0.8).
	Headroom float64
}

func (c AdaptiveConfig) withDefaults(dt float64) AdaptiveConfig {
	if c.MaxErr == 0 {
		c.MaxErr = 1e-5
	}
	if c.MinDt == 0 {
		c.MinDt = dt / 100
	}
	if c.MaxDt == 0 {
		c.MaxDt = 10 * dt
	}
	if c.Headroom == 0 {
		c.Headroom = 0.8
	}
	return c
}

// RunAdaptive advances the solver by duration using the embedded RK23
// (Bogacki–Shampine) pair with per-step error control: the step is
// accepted when the estimated error is below MaxErr and the step size is
// rescaled by (MaxErr/err)^(1/3) either way. It returns the number of
// accepted and rejected steps. The solver's Dt field is used as the
// initial step and left at the final adapted value.
//
// Like Step, it uses the fused tiled core unless UseReference is set or
// a full demag convolution is installed. The error estimate is an
// ∞-norm: it is reduced from fixed per-band partials, and the maximum is
// partition-invariant, so accept/reject decisions — and hence the whole
// trajectory — are bit-identical for every worker count.
func (s *Solver) RunAdaptive(duration float64, cfg AdaptiveConfig) (accepted, rejected int, err error) {
	if duration <= 0 {
		return 0, 0, fmt.Errorf("llg: adaptive duration %g must be positive", duration)
	}
	return s.RunAdaptiveUntil(s.Time+duration, cfg, nil)
}

// RunAdaptiveUntil advances the solver to the absolute simulation time
// end with the same RK23 controller as RunAdaptive — the resume-exact
// variant. Chunking a run by absolute end time matters for checkpointing:
// RunAdaptive's relative duration would re-derive a slightly different
// end from a mid-run Time, and the final clamped step would differ.
//
// each (if non-nil) is invoked after every accepted step, *after* the
// step-size controller has proposed the next dt (visible as s.Dt), so a
// checkpoint taken inside the callback captures exactly the loop state —
// M, Time, Dt, Steps — that a later RunAdaptiveUntil call with the same
// end and config needs to replay the remaining accept/reject sequence
// bit-identically (DESIGN.md §15). Resume-exact callers must pass
// explicit MinDt/MaxDt bounds: the defaults are derived from the
// solver's current Dt, which at resume is the adapted value, so
// defaulted bounds would differ between the original and resumed calls
// and change the controller's clamping. Returning false stops the run early
// with the state left consistent for such a resume. An end at or before
// the current time is a no-op, not an error — that is how a resumed
// segment that was interrupted on its last step terminates.
func (s *Solver) RunAdaptiveUntil(end float64, cfg AdaptiveConfig, each func(step int) bool) (accepted, rejected int, err error) {
	if math.IsNaN(end) || math.IsInf(end, 0) {
		return 0, 0, fmt.Errorf("llg: adaptive end time %g must be finite", end)
	}
	cfg = cfg.withDefaults(s.Dt)
	if cfg.MinDt <= 0 || cfg.MaxDt < cfg.MinDt {
		return 0, 0, fmt.Errorf("llg: invalid adaptive step bounds [%g, %g]", cfg.MinDt, cfg.MaxDt)
	}
	if s.UseReference || s.Eval.FullDemag != nil {
		accepted, rejected, err = s.runAdaptiveReference(end, cfg, each)
	} else {
		accepted, rejected, err = s.runAdaptiveFused(end, cfg, each)
	}
	if j := journal.Default(); j.Enabled() {
		j.Emit(s.RunID, "adaptive.stats",
			journal.F("accepted", accepted),
			journal.F("rejected", rejected),
			journal.F("final_dt", s.Dt),
			journal.F("max_err", cfg.MaxErr))
	}
	return accepted, rejected, err
}

// runAdaptiveFused is the banded RK23 loop (kernels in parallel.go).
func (s *Solver) runAdaptiveFused(end float64, cfg AdaptiveConfig, each func(step int) bool) (accepted, rejected int, err error) {
	s.ensurePrep()
	dt := math.Min(math.Max(s.Dt, cfg.MinDt), cfg.MaxDt)

	for s.Time < end {
		if s.Time+dt > end {
			dt = end - s.Time
		}
		t := s.Time
		s.timeBands = false
		// Stages 1–3 build the 3rd-order solution y3 into mtmp; stage 4
		// evaluates the embedded error stage at t+dt and folds the
		// squared-norm error into per-band partials.
		s.runStage(s.passBS23, 1, t, dt, s.M)
		s.runStage(s.passBS23, 2, t+dt/2, dt, s.mtmp)
		s.runStage(s.passBS23, 3, t+3*dt/4, dt, s.mtmp2)
		s.runStage(s.passBS23, 4, t+dt, dt, s.mtmp)
		// √ of the max squared norm equals the max norm (√ is monotone),
		// so this matches the reference stepper's per-cell norms exactly.
		worst := math.Sqrt(tile.MaxFloat64s(s.errPart)) * dt
		committed := worst <= cfg.MaxErr || dt <= cfg.MinDt
		if committed {
			// Accept: commit M = normalize(y3) without a field pass.
			s.st.num, s.st.t, s.st.dt, s.st.in = 5, t+dt, dt, s.mtmp
			s.st.doField, s.st.doTorque = false, true
			s.pool.Run(len(s.bands), s.passBS23)
			s.Time = t + dt
			s.steps++
			accepted++
			if s.obs != nil {
				s.obs.ObserveStep(s.steps, s.Time, s.M)
			}
		} else {
			rejected++
		}
		dt = nextDt(dt, worst, cfg)
		if committed && each != nil {
			s.Dt = dt // expose the proposed next step to the callback's checkpoint
			if !each(accepted) {
				return accepted, rejected, nil
			}
		}
		if accepted+rejected > 50_000_000 {
			return accepted, rejected, fmt.Errorf("llg: adaptive run exceeded step budget")
		}
	}
	s.Dt = dt
	return accepted, rejected, nil
}

// runAdaptiveReference is the original term-by-term RK23 loop, retained
// as the baseline and as the path for full-demag runs. The embedded
// error stage now has its own buffer (kerr); it previously reused the
// RK4 k4 buffer — harmless at the time because the adaptive path never
// touched k4, but an aliasing trap once buffers started being shared
// across banded passes.
func (s *Solver) runAdaptiveReference(end float64, cfg AdaptiveConfig, each func(step int) bool) (accepted, rejected int, err error) {
	dt := math.Min(math.Max(s.Dt, cfg.MinDt), cfg.MaxDt)

	n := len(s.M)
	m2 := s.mtmp
	e3 := s.kerr

	for s.Time < end {
		if s.Time+dt > end {
			dt = end - s.Time
		}
		t := s.Time
		// Bogacki–Shampine: k1 at t, k2 at t+dt/2, k3 at t+3dt/4,
		// 3rd-order solution y3; embedded 2nd-order ŷ via k4 at t+dt.
		s.rhs(t, s.M, s.k1)
		m2.Copy(s.M)
		m2.AddScaled(dt/2, s.k1)
		s.rhs(t+dt/2, m2, s.k2)
		m2.Copy(s.M)
		m2.AddScaled(3*dt/4, s.k2)
		s.rhs(t+3*dt/4, m2, s.k3)
		// y3 = y + dt(2/9 k1 + 1/3 k2 + 4/9 k3)
		m2.Copy(s.M)
		m2.AddScaled(2*dt/9, s.k1)
		m2.AddScaled(dt/3, s.k2)
		m2.AddScaled(4*dt/9, s.k3)
		s.rhs(t+dt, m2, e3) // error stage for the embedded 2nd-order pair
		// err = dt·‖(−5/72)k1 + (1/12)k2 + (1/9)k3 + (−1/8)k4‖∞
		worst := 0.0
		for i := 0; i < n; i++ {
			if !s.Region[i] {
				continue
			}
			ex := (-5.0/72)*s.k1[i].X + (1.0/12)*s.k2[i].X + (1.0/9)*s.k3[i].X - (1.0/8)*e3[i].X
			ey := (-5.0/72)*s.k1[i].Y + (1.0/12)*s.k2[i].Y + (1.0/9)*s.k3[i].Y - (1.0/8)*e3[i].Y
			ez := (-5.0/72)*s.k1[i].Z + (1.0/12)*s.k2[i].Z + (1.0/9)*s.k3[i].Z - (1.0/8)*e3[i].Z
			e := math.Sqrt(ex*ex + ey*ey + ez*ez)
			if e > worst {
				worst = e
			}
		}
		worst *= dt
		committed := worst <= cfg.MaxErr || dt <= cfg.MinDt
		if committed {
			// Accept.
			s.M.Copy(m2)
			s.renormalize()
			s.Time = t + dt
			s.steps++
			accepted++
			if s.obs != nil {
				s.obs.ObserveStep(s.steps, s.Time, s.M)
			}
		} else {
			rejected++
		}
		dt = nextDt(dt, worst, cfg)
		if committed && each != nil {
			s.Dt = dt // expose the proposed next step to the callback's checkpoint
			if !each(accepted) {
				return accepted, rejected, nil
			}
		}
		if accepted+rejected > 50_000_000 {
			return accepted, rejected, fmt.Errorf("llg: adaptive run exceeded step budget")
		}
	}
	s.Dt = dt
	return accepted, rejected, nil
}

// nextDt is the shared step-size controller (3rd-order: exponent 1/3).
func nextDt(dt, worst float64, cfg AdaptiveConfig) float64 {
	if worst > 0 {
		factor := cfg.Headroom * math.Cbrt(cfg.MaxErr/worst)
		factor = math.Min(math.Max(factor, 0.2), 5)
		return math.Min(math.Max(dt*factor, cfg.MinDt), cfg.MaxDt)
	}
	return math.Min(dt*2, cfg.MaxDt)
}

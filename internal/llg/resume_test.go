package llg

import (
	"testing"

	"spinwave/internal/vec"
)

// snapshotState captures the checkpoint tuple (M, Time, Steps, Dt) the
// way internal/checkpoint does: a deep copy of the loop-carried solver
// state after a committed step.
type snapshotState struct {
	m     vec.Field
	time  float64
	steps int
	dt    float64
}

func capture(s *Solver) snapshotState {
	m := vec.NewField(len(s.M))
	m.Copy(s.M)
	return snapshotState{m: m, time: s.Time, steps: s.Steps(), dt: s.Dt}
}

// requireIdentical fails unless the two solvers hold bit-identical
// magnetization, time and step counters. Exact float64 equality — the
// checkpoint/resume acceptance criterion, no tolerance.
func requireIdentical(t *testing.T, label string, want, got *Solver) {
	t.Helper()
	if want.Time != got.Time {
		t.Fatalf("%s: time %v != %v", label, got.Time, want.Time)
	}
	if want.Steps() != got.Steps() {
		t.Fatalf("%s: steps %d != %d", label, got.Steps(), want.Steps())
	}
	for i := range want.M {
		if want.M[i] != got.M[i] {
			t.Fatalf("%s: M[%d] %v != %v", label, i, got.M[i], want.M[i])
		}
	}
}

// TestRunStepsResumeBitIdentical pins the fixed-step resume contract
// (DESIGN.md §15): a run of N steps split as k committed steps, a
// checkpoint, and a fresh solver resumed for N−k steps lands on exactly
// the trajectory of the uninterrupted run — including with a different
// worker count after the resume, since trajectories are worker-invariant.
func TestRunStepsResumeBitIdentical(t *testing.T) {
	const total, k = 300, 127
	base := parallelTestSolver(t, 1, RK4)
	defer base.Close()
	if err := base.RunSteps(nil, total, nil); err != nil {
		t.Fatal(err)
	}

	first := parallelTestSolver(t, 2, RK4)
	if err := first.RunSteps(nil, k, nil); err != nil {
		t.Fatal(err)
	}
	snap := capture(first)
	first.Close()
	if snap.steps != k {
		t.Fatalf("snapshot at step %d, want %d", snap.steps, k)
	}

	resumed := parallelTestSolver(t, 4, RK4)
	defer resumed.Close()
	if err := resumed.Restore(snap.m, snap.time, snap.steps, snap.dt); err != nil {
		t.Fatal(err)
	}
	if err := resumed.RunSteps(nil, total-k, nil); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "fixed-step resume", base, resumed)
}

// TestRunAdaptiveUntilResumeBitIdentical is the adaptive-dt counterpart:
// stopping the RK23 loop from the each callback (which fires after the
// step-size controller has proposed the next dt), checkpointing, and
// resuming with the same absolute end time must replay the remaining
// accept/reject sequence exactly.
func TestRunAdaptiveUntilResumeBitIdentical(t *testing.T) {
	const stopAt = 25

	base := parallelTestSolver(t, 1, RK4)
	defer base.Close()
	// Explicit step bounds: the AdaptiveConfig defaults derive from the
	// solver's current (adapted) Dt, so a resume with defaulted bounds
	// would clamp the controller differently and diverge.
	cfg := AdaptiveConfig{MaxErr: 1e-6, MinDt: base.Dt / 100, MaxDt: 10 * base.Dt}
	end := base.Time + 250*base.Dt
	baseAcc, _, err := base.RunAdaptiveUntil(end, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if baseAcc <= stopAt {
		t.Fatalf("base run accepted only %d steps, need > %d", baseAcc, stopAt)
	}

	first := parallelTestSolver(t, 2, RK4)
	firstAcc, _, err := first.RunAdaptiveUntil(end, cfg, func(step int) bool { return step < stopAt })
	if err != nil {
		t.Fatal(err)
	}
	if firstAcc != stopAt {
		t.Fatalf("stopped after %d accepted steps, want %d", firstAcc, stopAt)
	}
	snap := capture(first)
	first.Close()

	resumed := parallelTestSolver(t, 4, RK4)
	defer resumed.Close()
	if err := resumed.Restore(snap.m, snap.time, snap.steps, snap.dt); err != nil {
		t.Fatal(err)
	}
	if _, _, err := resumed.RunAdaptiveUntil(end, cfg, nil); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "adaptive resume", base, resumed)

	// A second resume at the already-reached end time is a no-op.
	acc, rej, err := resumed.RunAdaptiveUntil(end, cfg, nil)
	if err != nil || acc != 0 || rej != 0 {
		t.Fatalf("resume at end time: acc=%d rej=%d err=%v, want all zero", acc, rej, err)
	}
}

// TestRunAdaptiveUntilReferenceResume covers the reference (term-by-term)
// RK23 path with the same stop/checkpoint/resume protocol.
func TestRunAdaptiveUntilReferenceResume(t *testing.T) {
	cfg := AdaptiveConfig{MaxErr: 1e-6, MinDt: 1e-15, MaxDt: 1e-12}
	const stopAt = 15

	base := singleSpin(t, 0.3, 0.02, 1e-13)
	base.TiltM(0.3)
	base.UseReference = true
	end := 400 * base.Dt
	baseAcc, _, err := base.RunAdaptiveUntil(end, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if baseAcc <= stopAt {
		t.Fatalf("base run accepted only %d steps, need > %d", baseAcc, stopAt)
	}

	first := singleSpin(t, 0.3, 0.02, 1e-13)
	first.TiltM(0.3)
	first.UseReference = true
	if acc, _, err := first.RunAdaptiveUntil(end, cfg, func(step int) bool { return step < stopAt }); err != nil || acc != stopAt {
		t.Fatalf("stop: acc=%d err=%v, want %d accepted", acc, err, stopAt)
	}
	snap := capture(first)

	resumed := singleSpin(t, 0.3, 0.02, 1e-13)
	resumed.UseReference = true
	if err := resumed.Restore(snap.m, snap.time, snap.steps, snap.dt); err != nil {
		t.Fatal(err)
	}
	if _, _, err := resumed.RunAdaptiveUntil(end, cfg, nil); err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, "reference adaptive resume", base, resumed)
}

// TestRestoreValidation pins the Restore error cases.
func TestRestoreValidation(t *testing.T) {
	s := singleSpin(t, 0.3, 0.01, 1e-13)
	if err := s.Restore(vec.NewField(len(s.M)+1), 0, 0, 1e-13); err == nil {
		t.Error("mismatched field length accepted")
	}
	if err := s.Restore(vec.NewField(len(s.M)), 0, 0, 0); err == nil {
		t.Error("zero dt accepted")
	}
	if err := s.Restore(vec.NewField(len(s.M)), 0, -1, 1e-13); err == nil {
		t.Error("negative step count accepted")
	}
}

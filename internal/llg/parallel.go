package llg

import (
	"time"

	"spinwave/internal/mag"
	"spinwave/internal/tile"
	"spinwave/internal/vec"
)

// This file implements the tiled, fused stepping core (DESIGN.md §10).
//
// Each Runge–Kutta stage is one banded pass over the precomputed active
// runs: the fused kernel evaluates the local effective field, overlays
// the time-dependent sources, computes the LLG torque and applies the
// stage update cell by cell. The mesh is split into horizontal row bands
// (tile.Split) executed on a persistent worker pool; the exchange
// stencil reads a one-row halo from the stage-input field, which is
// never written during the pass, and each band writes only its own rows
// of the stage-output field, so bands are data-race free by
// construction. A barrier (tile.Pool.Run returning) separates stages.
//
// Stage inputs and outputs ping-pong between two scratch fields (mtmp,
// mtmp2) instead of updating in place: an in-place update would
// overwrite cells that a neighboring cell's stencil — in this band or
// the adjacent one — still has to read. This is the shared-slice
// aliasing hazard the pre-tiling stepper avoided only by recomputing
// full-field copies every stage.
//
// Determinism: band boundaries depend only on (Ny, workers), per-cell
// arithmetic is band-independent, and the adaptive error reduction is
// merged from fixed per-band partials — so trajectories are bit-for-bit
// identical for every worker count (pinned by TestWorkerCountInvariance).
//
// The steady-state loop allocates nothing: all scratch lives in a
// per-solver vec.Arena, pass closures are prebuilt at construction, and
// stage parameters travel through the solver's stage field.

// stage carries the parameters of the in-flight banded pass.
type stage struct {
	t   float64   // field evaluation time of this stage
	dt  float64   // step size of the attempt
	in  vec.Field // stage-input magnetization (stencil + torque source)
	num uint8     // stage number within the scheme

	// doField/doTorque select the halves of the fused kernel. Both are
	// true in the common single-pass case; when a non-bandable source is
	// installed the stage runs as field pass → serial source sweep →
	// torque pass.
	doField  bool
	doTorque bool
}

// SetWorkers sets the number of stepping workers. n ≤ 1 selects inline
// serial execution; n > 1 starts a persistent tile.Pool of n goroutines
// that also accelerates the Energy reduction. Callers that set n > 1
// own the pool's lifetime and must call Close when done with the
// solver. The magnetization trajectory is bit-identical for every n.
func (s *Solver) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n == s.workers {
		return
	}
	s.workers = n
	if s.pool != nil {
		s.pool.Close()
		s.pool = nil
	}
	if n > 1 {
		s.pool = tile.NewPool(n)
	}
	s.Eval.SetPool(s.pool)
	s.prepared = false
}

// Workers returns the configured worker count (at least 1).
func (s *Solver) Workers() int {
	if s.workers < 1 {
		return 1
	}
	return s.workers
}

// Close releases the worker pool, if any. The solver remains usable
// afterwards in serial mode. Close is idempotent.
func (s *Solver) Close() {
	if s.pool != nil {
		s.pool.Close()
		s.pool = nil
		s.Eval.SetPool(nil)
		s.workers = 1
		s.prepared = false
	}
}

// InvalidatePrep discards the precomputed stepping state (bands, active
// runs, torque prefactors, source classification) so the next step
// rebuilds it. The mutating methods (SetWorkers, SetAlphaProfile,
// AddAbsorberTowards) call it automatically; call it manually after
// assigning Alpha, Gamma, Region or Eval.Sources directly between steps.
func (s *Solver) InvalidatePrep() { s.prepared = false }

// ensurePrep builds the fused-stepping state: band decomposition, the
// run/mask geometry shared with the evaluator, per-cell torque
// prefactors −γ/(1+α²), and the source classification (cell sources
// sampled inline, sparse sources gathered into an overlay, anything
// else handled by a serial sweep between the field and torque passes).
func (s *Solver) ensurePrep() {
	if s.prepared {
		return
	}
	initMetrics() // band timings may be observed from Step without a Run
	s.runs = s.Eval.Prepare()
	s.bands = tile.Split(s.Mesh.Ny, s.Workers())
	if s.alphaPref == nil {
		s.alphaPref = make([]float64, len(s.Alpha))
	}
	for i, a := range s.Alpha {
		s.alphaPref[i] = -s.Gamma / (1 + a*a)
	}
	s.cellSrcs = s.cellSrcs[:0]
	s.sparseSrcs = s.sparseSrcs[:0]
	s.otherSrcs = s.otherSrcs[:0]
	for _, src := range s.Eval.Sources {
		switch x := src.(type) {
		case mag.CellSource:
			s.cellSrcs = append(s.cellSrcs, x)
		case mag.SparseSource:
			s.sparseSrcs = append(s.sparseSrcs, x)
		default:
			s.otherSrcs = append(s.otherSrcs, src)
		}
	}
	// Union of sparse-source cells, deduplicated, and its per-band split.
	seen := make(map[int]bool)
	s.srcCells = s.srcCells[:0]
	for _, src := range s.sparseSrcs {
		for _, c := range src.SourceCells() {
			if !seen[c] {
				seen[c] = true
				s.srcCells = append(s.srcCells, c)
			}
		}
	}
	s.srcCellsBand = make([][]int, len(s.bands))
	for bi, b := range s.bands {
		lo, hi := b.J0*s.Mesh.Nx, b.J1*s.Mesh.Nx
		var cells []int
		for _, c := range s.srcCells {
			if c >= lo && c < hi {
				cells = append(cells, c)
			}
		}
		s.srcCellsBand[bi] = cells
	}
	if len(s.errPart) != len(s.bands) {
		s.errPart = make([]float64, len(s.bands))
	}
	s.prepared = true
}

// stepFused advances one fixed step with the banded fused kernels.
func (s *Solver) stepFused() {
	s.ensurePrep()
	dt, t := s.Dt, s.Time
	s.timeBands = s.steps&63 == 0 // sample band timings every 64 steps
	switch s.Scheme {
	case Heun:
		s.runStage(s.passHeun, 1, t, dt, s.M)
		s.runStage(s.passHeun, 2, t+dt, dt, s.mtmp)
	default: // RK4
		s.runStage(s.passRK4, 1, t, dt, s.M)
		s.runStage(s.passRK4, 2, t+dt/2, dt, s.mtmp)
		s.runStage(s.passRK4, 3, t+dt/2, dt, s.mtmp2)
		s.runStage(s.passRK4, 4, t+dt, dt, s.mtmp)
	}
	s.timeBands = false
	s.Time += dt
	s.steps++
}

// runStage executes one RK stage across all bands. In the common case
// the field and torque halves run fused in a single barrier; when
// non-bandable sources are installed the stage splits into a field
// pass, a serial source sweep over the full field, and a torque pass.
func (s *Solver) runStage(pass func(int), num uint8, t, dt float64, in vec.Field) {
	s.st.num, s.st.t, s.st.dt, s.st.in = num, t, dt, in
	s.applySparse(t)
	if len(s.otherSrcs) == 0 {
		s.st.doField, s.st.doTorque = true, true
		s.pool.Run(len(s.bands), pass)
		return
	}
	s.st.doField, s.st.doTorque = true, false
	s.pool.Run(len(s.bands), pass)
	for _, src := range s.otherSrcs {
		src.AddTo(t, s.b)
	}
	s.st.doField, s.st.doTorque = false, true
	s.pool.Run(len(s.bands), pass)
}

// applySparse rebuilds the sparse-source overlay for one stage time:
// the union cells are zeroed and every sparse source accumulates its
// contribution. The overlay is merged into the field inside each band's
// kernel, so overlapping antennas still sum in declaration order.
func (s *Solver) applySparse(t float64) {
	if len(s.sparseSrcs) == 0 {
		return
	}
	for _, c := range s.srcCells {
		s.srcB[c] = vec.Zero
	}
	for _, src := range s.sparseSrcs {
		src.AddTo(t, s.srcB)
	}
}

// fieldBand computes the effective field of one band's rows into s.b:
// the fused local terms (mag.Evaluator.FieldRows), then cell sources
// sampled per cell, then the sparse overlay.
func (s *Solver) fieldBand(bi int, t float64, in vec.Field) {
	band := s.bands[bi]
	s.Eval.FieldRows(in, s.b, band.J0, band.J1)
	if len(s.cellSrcs) > 0 {
		runs := s.runs.RowRuns(band.J0, band.J1)
		for _, src := range s.cellSrcs {
			for _, r := range runs {
				for c := int(r.Start); c < int(r.End); c++ {
					s.b[c] = s.b[c].Add(src.FieldAt(t, c))
				}
			}
		}
	}
	for _, c := range s.srcCellsBand[bi] {
		s.b[c] = s.b[c].Add(s.srcB[c])
	}
}

// torqueCell computes dm/dt for one cell from magnetization m and field
// b, using the precomputed prefactor −γ/(1+α²).
func (s *Solver) torqueCell(m, b vec.Vector, c int) vec.Vector {
	mxb := m.Cross(b)
	mxmxb := m.Cross(mxb)
	return mxb.MAdd(s.Alpha[c], mxmxb).Scale(s.alphaPref[c])
}

// rk4Band is the fused RK4 kernel for one band.
func (s *Solver) rk4Band(bi int) {
	var t0 time.Time
	if s.timeBands {
		t0 = time.Now()
	}
	st := &s.st
	if st.doField {
		s.fieldBand(bi, st.t, st.in)
	}
	if st.doTorque {
		band := s.bands[bi]
		runs := s.runs.RowRuns(band.J0, band.J1)
		dt := st.dt
		switch st.num {
		case 1: // k1 from M; mtmp = M + dt/2·k1
			for _, r := range runs {
				for c := int(r.Start); c < int(r.End); c++ {
					k := s.torqueCell(s.M[c], s.b[c], c)
					s.k1[c] = k
					s.mtmp[c] = s.M[c].MAdd(dt/2, k)
				}
			}
		case 2: // k2 from mtmp; mtmp2 = M + dt/2·k2
			for _, r := range runs {
				for c := int(r.Start); c < int(r.End); c++ {
					k := s.torqueCell(s.mtmp[c], s.b[c], c)
					s.k2[c] = k
					s.mtmp2[c] = s.M[c].MAdd(dt/2, k)
				}
			}
		case 3: // k3 from mtmp2; mtmp = M + dt·k3
			for _, r := range runs {
				for c := int(r.Start); c < int(r.End); c++ {
					k := s.torqueCell(s.mtmp2[c], s.b[c], c)
					s.k3[c] = k
					s.mtmp[c] = s.M[c].MAdd(dt, k)
				}
			}
		case 4: // k4 from mtmp (in registers); final update + renormalize
			for _, r := range runs {
				for c := int(r.Start); c < int(r.End); c++ {
					k4 := s.torqueCell(s.mtmp[c], s.b[c], c)
					s.M[c] = s.M[c].
						MAdd(dt/6, s.k1[c]).
						MAdd(dt/3, s.k2[c]).
						MAdd(dt/3, s.k3[c]).
						MAdd(dt/6, k4).
						Normalized()
				}
			}
		}
	}
	if s.timeBands {
		mBandSeconds.Observe(time.Since(t0).Seconds())
	}
}

// heunBand is the fused Heun (predictor-corrector) kernel for one band.
func (s *Solver) heunBand(bi int) {
	var t0 time.Time
	if s.timeBands {
		t0 = time.Now()
	}
	st := &s.st
	if st.doField {
		s.fieldBand(bi, st.t, st.in)
	}
	if st.doTorque {
		band := s.bands[bi]
		runs := s.runs.RowRuns(band.J0, band.J1)
		dt := st.dt
		switch st.num {
		case 1: // k1 from M; mtmp = M + dt·k1 (predictor)
			for _, r := range runs {
				for c := int(r.Start); c < int(r.End); c++ {
					k := s.torqueCell(s.M[c], s.b[c], c)
					s.k1[c] = k
					s.mtmp[c] = s.M[c].MAdd(dt, k)
				}
			}
		case 2: // k2 from mtmp (in registers); corrector + renormalize
			for _, r := range runs {
				for c := int(r.Start); c < int(r.End); c++ {
					k2 := s.torqueCell(s.mtmp[c], s.b[c], c)
					s.M[c] = s.M[c].MAdd(dt/2, s.k1[c]).MAdd(dt/2, k2).Normalized()
				}
			}
		}
	}
	if s.timeBands {
		mBandSeconds.Observe(time.Since(t0).Seconds())
	}
}

// bs23Band is the fused Bogacki–Shampine (RK23) kernel for one band,
// used by RunAdaptive. Stage 4 folds the embedded error estimate into
// per-band partials (s.errPart) merged after the barrier in fixed band
// order; stage 5 commits an accepted attempt.
func (s *Solver) bs23Band(bi int) {
	var t0 time.Time
	if s.timeBands {
		t0 = time.Now()
	}
	st := &s.st
	if st.doField {
		s.fieldBand(bi, st.t, st.in)
	}
	if st.doTorque {
		band := s.bands[bi]
		runs := s.runs.RowRuns(band.J0, band.J1)
		dt := st.dt
		switch st.num {
		case 1: // k1 from M; mtmp = M + dt/2·k1
			for _, r := range runs {
				for c := int(r.Start); c < int(r.End); c++ {
					k := s.torqueCell(s.M[c], s.b[c], c)
					s.k1[c] = k
					s.mtmp[c] = s.M[c].MAdd(dt/2, k)
				}
			}
		case 2: // k2 from mtmp; mtmp2 = M + 3dt/4·k2
			for _, r := range runs {
				for c := int(r.Start); c < int(r.End); c++ {
					k := s.torqueCell(s.mtmp[c], s.b[c], c)
					s.k2[c] = k
					s.mtmp2[c] = s.M[c].MAdd(3*dt/4, k)
				}
			}
		case 3: // k3 from mtmp2; mtmp = y3 = M + dt(2/9·k1 + 1/3·k2 + 4/9·k3)
			for _, r := range runs {
				for c := int(r.Start); c < int(r.End); c++ {
					k := s.torqueCell(s.mtmp2[c], s.b[c], c)
					s.k3[c] = k
					s.mtmp[c] = s.M[c].
						MAdd(2*dt/9, s.k1[c]).
						MAdd(dt/3, s.k2[c]).
						MAdd(4*dt/9, k)
				}
			}
		case 4: // k4 from y3 (in registers); per-band ∞-norm error partial
			worst := 0.0
			for _, r := range runs {
				for c := int(r.Start); c < int(r.End); c++ {
					k4 := s.torqueCell(s.mtmp[c], s.b[c], c)
					ex := (-5.0/72)*s.k1[c].X + (1.0/12)*s.k2[c].X + (1.0/9)*s.k3[c].X - (1.0/8)*k4.X
					ey := (-5.0/72)*s.k1[c].Y + (1.0/12)*s.k2[c].Y + (1.0/9)*s.k3[c].Y - (1.0/8)*k4.Y
					ez := (-5.0/72)*s.k1[c].Z + (1.0/12)*s.k2[c].Z + (1.0/9)*s.k3[c].Z - (1.0/8)*k4.Z
					if e := ex*ex + ey*ey + ez*ez; e > worst {
						worst = e
					}
				}
			}
			s.errPart[bi] = worst
		case 5: // accept: M = normalize(y3)
			for _, r := range runs {
				for c := int(r.Start); c < int(r.End); c++ {
					s.M[c] = s.mtmp[c].Normalized()
				}
			}
		}
	}
	if s.timeBands {
		mBandSeconds.Observe(time.Since(t0).Seconds())
	}
}

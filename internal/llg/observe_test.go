package llg

import (
	"testing"

	"spinwave/internal/grid"
	"spinwave/internal/journal"
	"spinwave/internal/material"
	"spinwave/internal/vec"
)

// countingObserver records the step numbers and times it was called with.
type countingObserver struct {
	steps []int
	times []float64
}

func (o *countingObserver) ObserveStep(step int, t float64, m vec.Field) {
	o.steps = append(o.steps, step)
	o.times = append(o.times, t)
}

// TestObserverCumulativeSteps checks the observer sees the solver's
// cumulative step counter (continuous across Run calls, so probe stride
// decimation does not reset between the transient and measure phases)
// and the post-step simulation time.
func TestObserverCumulativeSteps(t *testing.T) {
	s := singleSpin(t, 0.1, 0.01, 1e-13)
	obs := &countingObserver{}
	s.SetObserver(obs)
	s.Run(5e-13, nil)
	s.Run(3e-13, nil)
	if len(obs.steps) != s.Steps() || s.Steps() < 6 {
		t.Fatalf("observer called %d times over %d solver steps", len(obs.steps), s.Steps())
	}
	for i, st := range obs.steps {
		if st != i+1 {
			t.Fatalf("observation %d has step %d, want %d (cumulative across Run calls)", i, st, i+1)
		}
	}
	if obs.times[0] != s.Dt {
		t.Errorf("first observed time %g, want dt=%g", obs.times[0], s.Dt)
	}
	seen := len(obs.steps)
	s.SetObserver(nil)
	s.Run(2e-13, nil)
	if len(obs.steps) != seen {
		t.Error("observer still called after removal")
	}
}

// TestObserverAdaptive checks accepted adaptive steps are observed
// (rejected ones are not: step numbers stay strictly increasing) and
// that an attached journal receives the adaptive.stats event under the
// solver's run ID.
func TestObserverAdaptive(t *testing.T) {
	mesh := grid.MustMesh(4, 4, 2e-9, 2e-9, 1e-9)
	s, err := New(mesh, grid.FullRegion(mesh), material.FeCoB(), 1e-13)
	if err != nil {
		t.Fatal(err)
	}
	s.RunID = "rtest"
	obs := &countingObserver{}
	s.SetObserver(obs)
	ring := journal.NewRingSink(64)
	defer journal.Default().Attach(ring)()

	acc, _, err := s.RunAdaptive(2e-12, AdaptiveConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(obs.steps) != acc {
		t.Errorf("observed %d steps, accepted %d", len(obs.steps), acc)
	}
	for i := 1; i < len(obs.steps); i++ {
		if obs.steps[i] != obs.steps[i-1]+1 {
			t.Fatalf("non-consecutive observed steps %v", obs.steps)
		}
	}
	evs := ring.EventsFor("rtest")
	if len(evs) != 1 || evs[0].Name != "adaptive.stats" {
		t.Fatalf("journal events %+v, want one adaptive.stats", evs)
	}
	if got := evs[0].Fields["accepted"]; got != acc {
		t.Errorf("journaled accepted = %v, want %d", got, acc)
	}
}

// nopObserver is the cheapest possible observer, used to price the hook.
type nopObserver struct{ calls int }

func (o *nopObserver) ObserveStep(int, float64, vec.Field) { o.calls++ }

// TestRunObservedAllocates pins that the observer dispatch itself adds
// no allocation to the run loop (the probe package separately pins that
// Recorder.ObserveStep is allocation-free).
func TestRunObservedAllocates(t *testing.T) {
	s := singleSpin(t, 0.1, 0.01, 1e-13)
	s.Run(1e-12, nil) // warm up scratch state
	obs := &nopObserver{}
	s.SetObserver(obs)
	allocs := testing.AllocsPerRun(10, func() {
		s.Step()
		obs.ObserveStep(s.Steps(), s.Time, s.M)
	})
	if allocs > 0 {
		t.Errorf("observed stepping allocates %g per step, want 0", allocs)
	}
}

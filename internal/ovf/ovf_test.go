package ovf

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"spinwave/internal/grid"
	"spinwave/internal/vec"
)

func testField(mesh grid.Mesh) vec.Field {
	m := vec.NewField(mesh.NCells())
	for i := range m {
		m[i] = vec.V(math.Sin(float64(i)*0.3), math.Cos(float64(i)*0.7), 0.5)
	}
	return m
}

func TestWriteReadRoundTrip(t *testing.T) {
	mesh := grid.MustMesh(6, 4, 5e-9, 5e-9, 1e-9)
	m := testField(mesh)
	var buf bytes.Buffer
	if err := Write(&buf, mesh, m, "round trip"); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Title != "round trip" {
		t.Errorf("title = %q", f.Title)
	}
	if f.Mesh.Nx != mesh.Nx || f.Mesh.Ny != mesh.Ny {
		t.Errorf("mesh = %+v", f.Mesh)
	}
	if math.Abs(f.Mesh.Dx-mesh.Dx) > 1e-18 || math.Abs(f.Mesh.Dz-mesh.Dz) > 1e-18 {
		t.Errorf("cell sizes = %g, %g", f.Mesh.Dx, f.Mesh.Dz)
	}
	for i := range m {
		if f.M[i].Sub(m[i]).Norm() > 1e-7 {
			t.Fatalf("cell %d: %v != %v", i, f.M[i], m[i])
		}
	}
}

func TestWriteValidation(t *testing.T) {
	mesh := grid.MustMesh(2, 2, 1e-9, 1e-9, 1e-9)
	var buf bytes.Buffer
	if err := Write(&buf, mesh, vec.NewField(3), "bad"); err == nil {
		t.Error("mismatched field accepted")
	}
}

func TestWriteHeaderFormat(t *testing.T) {
	mesh := grid.MustMesh(3, 2, 5e-9, 4e-9, 1e-9)
	var buf bytes.Buffer
	if err := Write(&buf, mesh, vec.NewField(6), "hdr"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# OOMMF OVF 2.0",
		"# xnodes: 3",
		"# ynodes: 2",
		"# znodes: 1",
		"# valuedim: 3",
		"# Begin: Data Text",
		"# End: Segment",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"multi-layer": "# xnodes: 1\n# ynodes: 1\n# znodes: 2\n# xstepsize: 1e-9\n# ystepsize: 1e-9\n# zstepsize: 1e-9\n",
		"bad data":    "# xnodes: 1\n# ynodes: 1\n# znodes: 1\n# xstepsize: 1e-9\n# ystepsize: 1e-9\n# zstepsize: 1e-9\n# Begin: Data Text\n1 2\n",
		"bad number":  "# xnodes: 1\n# ynodes: 1\n# znodes: 1\n# xstepsize: 1e-9\n# ystepsize: 1e-9\n# zstepsize: 1e-9\n# Begin: Data Text\nx y z\n",
		"wrong count": "# xnodes: 2\n# ynodes: 1\n# znodes: 1\n# xstepsize: 1e-9\n# ystepsize: 1e-9\n# zstepsize: 1e-9\n# Begin: Data Text\n1 2 3\n",
		"valuedim":    "# valuedim: 1\n",
		"no mesh":     "# Begin: Data Text\n1 2 3\n",
	}
	for name, body := range cases {
		if _, err := Read(strings.NewReader(body)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestWriteExactRoundTrip pins the checkpoint-format contract: every
// component survives the disk round trip bit-identically, including
// values that 9-significant-digit formatting would corrupt.
func TestWriteExactRoundTrip(t *testing.T) {
	mesh := grid.MustMesh(6, 4, 5e-9, 5e-9, 1e-9)
	m := testField(mesh)
	// Adversarial values: denormal-adjacent, long mantissas, negatives.
	m[0] = vec.V(1.0/3.0, -2.0/7.0, math.Nextafter(1, 2))
	m[1] = vec.V(0.1+0.2, 1e-300, -math.Pi)
	var buf bytes.Buffer
	if err := WriteExact(&buf, mesh, m, "exact"); err != nil {
		t.Fatal(err)
	}
	f, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m {
		if f.M[i] != m[i] {
			t.Fatalf("cell %d not bit-identical: %v != %v", i, f.M[i], m[i])
		}
	}
}

// TestWriteStaysNineDigits pins that the default Write still rounds: a
// checkpoint must use WriteExact, so this asymmetry is load-bearing.
func TestWriteStaysNineDigits(t *testing.T) {
	mesh := grid.MustMesh(1, 1, 1e-9, 1e-9, 1e-9)
	m := vec.Field{vec.V(1.0/3.0, 0, 0)}
	var buf bytes.Buffer
	if err := Write(&buf, mesh, m, "rounded"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0.333333333 0 0") {
		t.Fatalf("default Write no longer rounds to 9 digits:\n%s", buf.String())
	}
}

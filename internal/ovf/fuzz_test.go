package ovf

import (
	"bytes"
	"strings"
	"testing"

	"spinwave/internal/grid"
	"spinwave/internal/vec"
)

// FuzzOVFRead drives the OVF 2.0 parser with arbitrary byte streams.
// Whatever the input, Read must return cleanly — either an error or a
// File whose mesh and data are mutually consistent — and a file it
// accepts must survive a Write/Read round trip unchanged in shape.
func FuzzOVFRead(f *testing.F) {
	// Seed with a genuine file from our own writer ...
	mesh, err := grid.NewMesh(4, 3, 5e-9, 5e-9, 1.5e-9)
	if err != nil {
		f.Fatal(err)
	}
	m := vec.NewField(mesh.NCells())
	for i := range m {
		m[i] = vec.V(float64(i%3), float64(i%5)/4, 1)
	}
	var valid bytes.Buffer
	if err := Write(&valid, mesh, m, "fuzz seed"); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	// ... and with structured corruptions of the kind real files exhibit.
	f.Add([]byte(""))
	f.Add([]byte("# OOMMF OVF 2.0\n# znodes: 1\n"))
	f.Add([]byte("# znodes: 1\n# xnodes: 2\n# ynodes: 2\n# Begin: Data Text\n1 2\n"))
	f.Add([]byte("# znodes: 1\n# xnodes: 2\n# ynodes: 2\n# Begin: Data Text\n1 2 NaN\n"))
	f.Add([]byte("# znodes: 1\n# xnodes: -1\n# ynodes: 2\n"))
	f.Add([]byte("# znodes: 2\n"))
	f.Add([]byte("# valuedim: 1\n"))
	f.Add([]byte(strings.Replace(valid.String(), "xnodes: 4", "xnodes: 999", 1)))
	f.Add([]byte(strings.Replace(valid.String(), "# End: Data Text\n", "", 1)))
	f.Add([]byte("# xnodes: 1\n# ynodes: 1\n# znodes: 1\n# xstepsize: 1\n# ystepsize: 1\n# zstepsize: 1\n# Begin: Data Text\n0.5 0.5 0.5\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if got, want := len(parsed.M), parsed.Mesh.NCells(); got != want {
			t.Fatalf("accepted file with %d data points for a %d-cell mesh", got, want)
		}
		if parsed.Mesh.Nx <= 0 || parsed.Mesh.Ny <= 0 ||
			parsed.Mesh.Dx <= 0 || parsed.Mesh.Dy <= 0 || parsed.Mesh.Dz <= 0 {
			t.Fatalf("accepted degenerate mesh %+v", parsed.Mesh)
		}
		var out bytes.Buffer
		if err := Write(&out, parsed.Mesh, parsed.M, parsed.Title); err != nil {
			t.Fatalf("re-writing an accepted file failed: %v", err)
		}
		again, err := Read(&out)
		if err != nil {
			t.Fatalf("re-reading our own writer's output failed: %v", err)
		}
		if again.Mesh.Nx != parsed.Mesh.Nx || again.Mesh.Ny != parsed.Mesh.Ny ||
			len(again.M) != len(parsed.M) {
			t.Fatalf("round trip changed shape: %+v -> %+v", parsed.Mesh, again.Mesh)
		}
	})
}

// Package ovf reads and writes magnetization snapshots in the OVF 2.0
// text format used by OOMMF and MuMax3, so that fields produced by this
// repo's solver can be inspected with the standard micromagnetics
// toolchain (and MuMax3 outputs can be compared against ours).
package ovf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"spinwave/internal/grid"
	"spinwave/internal/vec"
)

// Write emits field m on mesh as an OVF 2.0 text file with the given
// title. Cells outside any region are written as stored (typically zero).
// Values are rounded to 9 significant digits — plenty for visualization
// and cross-tool comparison; use WriteExact when the file must round-trip
// the field bit-identically (checkpoints).
func Write(w io.Writer, mesh grid.Mesh, m vec.Field, title string) error {
	return write(w, mesh, m, title, func(v float64) string {
		return strconv.FormatFloat(v, 'g', 9, 64)
	})
}

// WriteExact is Write with shortest-round-trip float formatting: Read
// returns every component bit-identical to the field written. This is the
// format solver checkpoints use — exact resume (DESIGN.md §15) depends on
// the magnetization surviving the disk round trip unchanged.
func WriteExact(w io.Writer, mesh grid.Mesh, m vec.Field, title string) error {
	return write(w, mesh, m, title, func(v float64) string {
		return strconv.FormatFloat(v, 'g', -1, 64)
	})
}

// write emits the OVF segment with the given per-component formatter.
func write(w io.Writer, mesh grid.Mesh, m vec.Field, title string, format func(float64) string) error {
	if len(m) != mesh.NCells() {
		return fmt.Errorf("ovf: field has %d cells, mesh %d", len(m), mesh.NCells())
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# OOMMF OVF 2.0\n")
	fmt.Fprintf(bw, "# Segment count: 1\n")
	fmt.Fprintf(bw, "# Begin: Segment\n")
	fmt.Fprintf(bw, "# Begin: Header\n")
	fmt.Fprintf(bw, "# Title: %s\n", title)
	fmt.Fprintf(bw, "# meshtype: rectangular\n")
	fmt.Fprintf(bw, "# meshunit: m\n")
	fmt.Fprintf(bw, "# xmin: 0\n# ymin: 0\n# zmin: 0\n")
	fmt.Fprintf(bw, "# xmax: %g\n# ymax: %g\n# zmax: %g\n", mesh.SizeX(), mesh.SizeY(), mesh.Dz)
	fmt.Fprintf(bw, "# valuedim: 3\n")
	fmt.Fprintf(bw, "# valuelabels: m_x m_y m_z\n")
	fmt.Fprintf(bw, "# valueunits: 1 1 1\n")
	fmt.Fprintf(bw, "# xbase: %g\n# ybase: %g\n# zbase: %g\n", mesh.Dx/2, mesh.Dy/2, mesh.Dz/2)
	fmt.Fprintf(bw, "# xnodes: %d\n# ynodes: %d\n# znodes: 1\n", mesh.Nx, mesh.Ny)
	fmt.Fprintf(bw, "# xstepsize: %g\n# ystepsize: %g\n# zstepsize: %g\n", mesh.Dx, mesh.Dy, mesh.Dz)
	fmt.Fprintf(bw, "# End: Header\n")
	fmt.Fprintf(bw, "# Begin: Data Text\n")
	for j := 0; j < mesh.Ny; j++ {
		for i := 0; i < mesh.Nx; i++ {
			v := m[mesh.Idx(i, j)]
			bw.WriteString(format(v.X))
			bw.WriteByte(' ')
			bw.WriteString(format(v.Y))
			bw.WriteByte(' ')
			bw.WriteString(format(v.Z))
			bw.WriteByte('\n')
		}
	}
	fmt.Fprintf(bw, "# End: Data Text\n")
	fmt.Fprintf(bw, "# End: Segment\n")
	return bw.Flush()
}

// File is a parsed OVF 2.0 segment.
type File struct {
	Title string
	Mesh  grid.Mesh
	M     vec.Field
}

// Read parses an OVF 2.0 text file written by Write (or by MuMax3 with
// text output). Only single-segment, z-node-count 1, valuedim-3 text
// files are supported.
func Read(r io.Reader) (*File, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	f := &File{}
	var nx, ny, nz int
	var dx, dy, dz float64
	inData := false
	var data []vec.Vector

	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			meta := strings.TrimSpace(strings.TrimPrefix(line, "#"))
			switch {
			case strings.HasPrefix(meta, "Title:"):
				f.Title = strings.TrimSpace(strings.TrimPrefix(meta, "Title:"))
			case strings.HasPrefix(meta, "xnodes:"):
				nx = parseInt(meta)
			case strings.HasPrefix(meta, "ynodes:"):
				ny = parseInt(meta)
			case strings.HasPrefix(meta, "znodes:"):
				nz = parseInt(meta)
			case strings.HasPrefix(meta, "xstepsize:"):
				dx = parseFloat(meta)
			case strings.HasPrefix(meta, "ystepsize:"):
				dy = parseFloat(meta)
			case strings.HasPrefix(meta, "zstepsize:"):
				dz = parseFloat(meta)
			case strings.HasPrefix(meta, "Begin: Data Text"):
				inData = true
			case strings.HasPrefix(meta, "End: Data"):
				inData = false
			case strings.HasPrefix(meta, "valuedim:"):
				if parseInt(meta) != 3 {
					return nil, fmt.Errorf("ovf: only valuedim 3 supported")
				}
			}
			continue
		}
		if !inData {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("ovf: bad data line %q", line)
		}
		var v vec.Vector
		var err error
		if v.X, err = strconv.ParseFloat(fields[0], 64); err != nil {
			return nil, fmt.Errorf("ovf: %w", err)
		}
		if v.Y, err = strconv.ParseFloat(fields[1], 64); err != nil {
			return nil, fmt.Errorf("ovf: %w", err)
		}
		if v.Z, err = strconv.ParseFloat(fields[2], 64); err != nil {
			return nil, fmt.Errorf("ovf: %w", err)
		}
		data = append(data, v)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ovf: %w", err)
	}
	if nz != 1 {
		return nil, fmt.Errorf("ovf: only single-layer files supported (znodes=%d)", nz)
	}
	mesh, err := grid.NewMesh(nx, ny, dx, dy, dz)
	if err != nil {
		return nil, fmt.Errorf("ovf: bad mesh header: %w", err)
	}
	if len(data) != mesh.NCells() {
		return nil, fmt.Errorf("ovf: %d data points for %d cells", len(data), mesh.NCells())
	}
	f.Mesh = mesh
	f.M = data
	return f, nil
}

func parseInt(meta string) int {
	parts := strings.SplitN(meta, ":", 2)
	if len(parts) != 2 {
		return 0
	}
	v, _ := strconv.Atoi(strings.TrimSpace(parts[1]))
	return v
}

func parseFloat(meta string) float64 {
	parts := strings.SplitN(meta, ":", 2)
	if len(parts) != 2 {
		return 0
	}
	v, _ := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	return v
}

// Package material defines magnetic material parameter sets and derived
// quantities (anisotropy field, exchange length, ...).
//
// The preset FeCoB matches the paper's simulation setup (§IV-A):
// Ms = 1100 kA/m, Aex = 18.5 pJ/m, α = 0.004, Ku = 0.832 MJ/m³ with
// perpendicular (out-of-plane) easy axis, on a 50 nm wide, 1 nm thick
// waveguide.
package material

import (
	"fmt"
	"math"

	"spinwave/internal/units"
	"spinwave/internal/vec"
)

// Params holds the material constants of a ferromagnetic film.
type Params struct {
	Name  string  // human-readable material name
	Ms    float64 // saturation magnetization, A/m
	Aex   float64 // exchange stiffness, J/m
	Alpha float64 // Gilbert damping constant, dimensionless
	Ku1   float64 // first-order uniaxial anisotropy constant, J/m³
	AnisU vec.Vector
	// Gamma is the gyromagnetic ratio in rad/(s·T). Zero means use the
	// default units.GammaLL.
	Gamma float64
}

// Validate reports whether the parameter set is physically usable.
func (p Params) Validate() error {
	if p.Ms <= 0 {
		return fmt.Errorf("material %q: Ms = %g must be positive", p.Name, p.Ms)
	}
	if p.Aex <= 0 {
		return fmt.Errorf("material %q: Aex = %g must be positive", p.Name, p.Aex)
	}
	if p.Alpha < 0 {
		return fmt.Errorf("material %q: damping α = %g must be non-negative", p.Name, p.Alpha)
	}
	if p.Ku1 != 0 && p.AnisU.Norm() == 0 {
		return fmt.Errorf("material %q: Ku1 set but anisotropy axis is zero", p.Name)
	}
	return nil
}

// GammaOrDefault returns the gyromagnetic ratio, falling back to
// units.GammaLL when unset.
func (p Params) GammaOrDefault() float64 {
	if p.Gamma != 0 {
		return p.Gamma
	}
	return units.GammaLL
}

// AnisotropyField returns the uniaxial anisotropy field Hk = 2·Ku1/(µ0·Ms)
// in A/m.
func (p Params) AnisotropyField() float64 {
	return 2 * p.Ku1 / (units.Mu0 * p.Ms)
}

// ExchangeLength returns λex = sqrt(2·Aex/(µ0·Ms²)) in meters; cell sizes
// larger than this under-resolve exchange-dominated spin waves.
func (p Params) ExchangeLength() float64 {
	return math.Sqrt(2 * p.Aex / (units.Mu0 * p.Ms * p.Ms))
}

// EffectivePMAField returns Hk − Ms, the net perpendicular stiffness field
// of a thin film with perpendicular anisotropy after subtracting the
// thin-film demagnetization field, in A/m. The film is perpendicular-
// magnetized (forward-volume configuration) if this is positive.
func (p Params) EffectivePMAField() float64 {
	return p.AnisotropyField() - p.Ms
}

// IsPerpendicular reports whether the easy-axis anisotropy overcomes the
// thin-film demag field so the ground state is out of plane without an
// external field.
func (p Params) IsPerpendicular() bool { return p.EffectivePMAField() > 0 }

// String summarizes the parameter set.
func (p Params) String() string {
	return fmt.Sprintf("%s: Ms=%.4g A/m, Aex=%.4g J/m, α=%.4g, Ku1=%.4g J/m³",
		p.Name, p.Ms, p.Aex, p.Alpha, p.Ku1)
}

// FeCoB returns the Fe60Co20B20 parameter set used in the paper's MuMax3
// validation (§IV-A, ref [39]).
func FeCoB() Params {
	return Params{
		Name:  "Fe60Co20B20",
		Ms:    1100e3,    // 1100 kA/m
		Aex:   18.5e-12,  // 18.5 pJ/m
		Alpha: 0.004,     //
		Ku1:   0.832e6,   // 0.832 MJ/m³
		AnisU: vec.UnitZ, // perpendicular easy axis
		Gamma: units.GammaLL,
	}
}

// YIG returns a standard yttrium-iron-garnet parameter set, useful for
// low-damping comparison studies ([27], [43]).
func YIG() Params {
	return Params{
		Name:  "YIG",
		Ms:    140e3,
		Aex:   3.5e-12,
		Alpha: 2e-4,
		AnisU: vec.UnitZ,
		Gamma: units.GammaLL,
	}
}

// Permalloy returns a Ni80Fe20 parameter set (in-plane soft magnet). It has
// no PMA; using it for a forward-volume device requires an external bias
// field.
func Permalloy() Params {
	return Params{
		Name:  "Ni80Fe20",
		Ms:    800e3,
		Aex:   13e-12,
		Alpha: 0.008,
		AnisU: vec.UnitZ,
		Gamma: units.GammaLL,
	}
}

// Presets returns all built-in materials keyed by lower-case name.
func Presets() map[string]Params {
	return map[string]Params{
		"fecob":     FeCoB(),
		"yig":       YIG(),
		"permalloy": Permalloy(),
	}
}

// ByName looks up a preset by its Presets key.
func ByName(name string) (Params, error) {
	p, ok := Presets()[name]
	if !ok {
		return Params{}, fmt.Errorf("material: unknown preset %q", name)
	}
	return p, nil
}

package material

import (
	"math"
	"testing"

	"spinwave/internal/vec"
)

func TestFeCoBMatchesPaper(t *testing.T) {
	p := FeCoB()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Ms != 1100e3 {
		t.Errorf("Ms = %g, want 1100 kA/m", p.Ms)
	}
	if p.Aex != 18.5e-12 {
		t.Errorf("Aex = %g, want 18.5 pJ/m", p.Aex)
	}
	if p.Alpha != 0.004 {
		t.Errorf("α = %g, want 0.004", p.Alpha)
	}
	if p.Ku1 != 0.832e6 {
		t.Errorf("Ku1 = %g, want 0.832 MJ/m³", p.Ku1)
	}
	if p.AnisU != vec.UnitZ {
		t.Errorf("easy axis = %v, want z", p.AnisU)
	}
}

func TestFeCoBIsPerpendicular(t *testing.T) {
	p := FeCoB()
	// Hk = 2·0.832e6/(µ0·1.1e6) ≈ 1.204e6 A/m > Ms = 1.1e6 A/m: the film is
	// out-of-plane magnetized with no external field, as the paper's
	// forward-volume configuration requires.
	hk := p.AnisotropyField()
	if math.Abs(hk-1.2037e6) > 2e3 {
		t.Errorf("Hk = %g A/m, want ≈1.204e6", hk)
	}
	if !p.IsPerpendicular() {
		t.Error("FeCoB should be perpendicular (Hk > Ms)")
	}
	if got := p.EffectivePMAField(); got <= 0 || got > 0.2e6 {
		t.Errorf("effective PMA field = %g A/m, want small positive", got)
	}
}

func TestExchangeLength(t *testing.T) {
	p := FeCoB()
	// λex = sqrt(2·18.5e-12 / (µ0·(1.1e6)²)) ≈ 4.9 nm.
	got := p.ExchangeLength()
	if math.Abs(got-4.93e-9) > 0.1e-9 {
		t.Errorf("exchange length = %g m, want ≈4.93 nm", got)
	}
}

func TestPermalloyNotPerpendicular(t *testing.T) {
	if Permalloy().IsPerpendicular() {
		t.Error("permalloy has no PMA and must not be perpendicular")
	}
}

func TestValidate(t *testing.T) {
	bad := []Params{
		{Name: "noMs", Aex: 1e-12},
		{Name: "noAex", Ms: 1e5},
		{Name: "negAlpha", Ms: 1e5, Aex: 1e-12, Alpha: -1},
		{Name: "kuNoAxis", Ms: 1e5, Aex: 1e-12, Ku1: 1e5},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%s) accepted invalid params", p.Name)
		}
	}
	for name, p := range Presets() {
		if err := p.Validate(); err != nil {
			t.Errorf("preset %q invalid: %v", name, err)
		}
	}
}

func TestGammaOrDefault(t *testing.T) {
	var p Params
	if got := p.GammaOrDefault(); got != 1.7595e11 {
		t.Errorf("default gamma = %g", got)
	}
	p.Gamma = 1e11
	if got := p.GammaOrDefault(); got != 1e11 {
		t.Errorf("explicit gamma = %g", got)
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("fecob")
	if err != nil || p.Name != "Fe60Co20B20" {
		t.Errorf("ByName(fecob) = %v, %v", p.Name, err)
	}
	if _, err := ByName("unobtainium"); err == nil {
		t.Error("ByName with unknown material did not error")
	}
}

package spinwave_test

import (
	"fmt"
	"log"
	"math"

	"spinwave"
)

// The Figure 2 phenomenon: equal-phase waves add, opposite-phase waves
// cancel.
func ExampleInterfere() {
	constructive, _ := spinwave.Interfere(1, 0, 1, 0)
	destructive, _ := spinwave.Interfere(1, 0, 1, math.Pi)
	fmt.Printf("constructive: %.1f\n", constructive)
	fmt.Printf("destructive: %.1f\n", destructive)
	// Output:
	// constructive: 2.0
	// destructive: 0.0
}

// Evaluate the paper's XOR gate with the behavioral backend and print
// the Table II reproduction.
func ExampleXORTruthTable() {
	gate, err := spinwave.NewBehavioral(spinwave.XOR, spinwave.PaperSpec(), spinwave.FeCoB())
	if err != nil {
		log.Fatal(err)
	}
	tt, err := spinwave.XORTruthTable(gate, false)
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range tt.Cases {
		fmt.Printf("I1=%v I2=%v -> O1 normalized %.2f, logic %v\n",
			b2i(c.Inputs[0]), b2i(c.Inputs[1]), c.Outputs[0].Normalized, b2i(c.Outputs[0].Logic))
	}
	// Output:
	// I1=0 I2=0 -> O1 normalized 1.00, logic 0
	// I1=1 I2=0 -> O1 normalized 0.00, logic 1
	// I1=0 I2=1 -> O1 normalized 0.00, logic 1
	// I1=1 I2=1 -> O1 normalized 1.00, logic 0
}

// The triangle Majority gate decodes by phase; its two outputs are
// identical (fan-out of 2).
func ExampleMajorityTruthTable() {
	gate, err := spinwave.NewBehavioral(spinwave.MAJ3, spinwave.PaperSpec(), spinwave.FeCoB())
	if err != nil {
		log.Fatal(err)
	}
	tt, err := spinwave.MajorityTruthTable(gate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("all correct:", tt.AllCorrect())
	fmt.Printf("worst |O1-O2|: %.3f\n", tt.FanOutMatched())
	// Output:
	// all correct: true
	// worst |O1-O2|: 0.000
}

// A full adder out of FO2 gates: carry = MAJ3, sum = XOR·XOR.
func ExampleFullAdder() {
	fa, err := spinwave.FullAdder(spinwave.TriangleFO2)
	if err != nil {
		log.Fatal(err)
	}
	out, err := fa.Evaluate(map[spinwave.Net]bool{"a": true, "b": true, "cin": false})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1+1+0: sum=%v cout=%v, energy %.1f aJ\n",
		b2i(out["sum"]), b2i(out["cout"]), fa.Energy()/1e-18)
	// Output:
	// 1+1+0: sum=0 cout=1, energy 24.1 aJ
}

// Four XOR operations through one gate at once, each on its own carrier
// frequency (the ref [9] data-parallel extension).
func ExampleNewParallelGate() {
	g, err := spinwave.NewParallelGate(spinwave.XOR, spinwave.PaperMicromagSpec(), spinwave.FeCoB(), 4)
	if err != nil {
		log.Fatal(err)
	}
	out, err := g.Eval(spinwave.WordFromUint(0b1100, 4), spinwave.WordFromUint(0b1010, 4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("1100 XOR 1010 = %04b\n", out["O1"].Uint())
	// Output:
	// 1100 XOR 1010 = 0110
}

// The drive frequency that realizes the paper's λ = 55 nm in this repo's
// solver.
func ExampleDriveFrequency() {
	f, err := spinwave.DriveFrequency(spinwave.FeCoB(), 1e-9, 55e-9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.1f GHz\n", f/1e9)
	// Output:
	// 15.9 GHz
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

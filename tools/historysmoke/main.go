// Command historysmoke is the CI gate for the run-history catalog and
// the retention engine (DESIGN.md §17): it builds the real swserve,
// swworker and swhistory binaries, boots a coordinator with history
// indexing on and a deliberately tiny trace budget (-retain-traces 1,
// sub-second sweep cadence), serves evals and a table, and runs two
// fleet requests back to back. The retention sweeper must then reclaim
// the older request's fleet-journal trace — journaled as retention.gc
// with nonzero bytes — while the newer trace still answers
// /v1/fleet/jobs/{id}/events and every piece of served work remains
// queryable through /v1/history and the swhistory CLI.
//
//	go run ./tools/historysmoke -journal history.jsonl -catalog history-catalog.jsonl
//
// The coordinator journal is left behind for journalcheck and the
// retention.gc / history.indexed greps in the history-smoke make
// target; the catalog copy is the CI post-mortem artifact.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("historysmoke: ")
	journalPath := flag.String("journal", "history.jsonl", "coordinator journal output (validated by journalcheck afterwards)")
	catalogPath := flag.String("catalog", "history-catalog.jsonl", "where to copy the final run-history catalog (CI artifact)")
	timeout := flag.Duration("timeout", 3*time.Minute, "overall deadline for the smoke run")
	flag.Parse()

	if err := run(*journalPath, *catalogPath, *timeout); err != nil {
		log.Fatal(err)
	}
}

func run(journalPath, catalogPath string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	tmp, err := os.MkdirTemp("", "historysmoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// One incarnation's journal only: swserve appends, and a stale file
	// would fail journalcheck's strict sequence check.
	if err := os.Remove(journalPath); err != nil && !os.IsNotExist(err) {
		return err
	}

	serveBin := filepath.Join(tmp, "swserve")
	workerBin := filepath.Join(tmp, "swworker")
	historyBin := filepath.Join(tmp, "swhistory")
	for bin, pkg := range map[string]string{
		serveBin: "./cmd/swserve", workerBin: "./cmd/swworker", historyBin: "./cmd/swhistory",
	} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("building %s: %w", pkg, err)
		}
	}

	// Coordinator with the full observability stack and a trace budget of
	// one: the second fleet request must evict the first request's trace.
	historyDir := filepath.Join(tmp, "history")
	serve := exec.Command(serveBin,
		"-addr", "127.0.0.1:0",
		"-fleet-queue", filepath.Join(tmp, "queue"),
		"-artifacts", filepath.Join(tmp, "artifacts"),
		"-journal", journalPath,
		"-history", historyDir,
		"-retain-traces", "1",
		"-retain-every", "250ms",
		"-workers", "2")
	stderr, err := serve.StderrPipe()
	if err != nil {
		return err
	}
	if err := serve.Start(); err != nil {
		return err
	}
	defer func() {
		serve.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		serve.Wait()                          //nolint:errcheck
	}()
	base, err := waitForListen(stderr)
	if err != nil {
		return err
	}
	log.Printf("coordinator at %s (history %s, retain-traces 1)", base, historyDir)

	worker := exec.Command(workerBin,
		"-coordinator", base,
		"-id", "smoke-h1",
		"-workers", "2",
		"-poll", "50ms")
	worker.Stderr = os.Stderr
	if err := worker.Start(); err != nil {
		return err
	}
	defer func() {
		worker.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		worker.Wait()                          //nolint:errcheck
	}()

	// Local served work: two eval cases and a truth table, all of which
	// must land in the catalog.
	if err := postOK(base+"/v1/eval", map[string]any{
		"gate": "xor", "cases": [][]bool{{true, false}, {false, false}},
	}); err != nil {
		return fmt.Errorf("eval: %w", err)
	}
	if err := postOK(base+"/v1/table", map[string]any{"gate": "maj3"}); err != nil {
		return fmt.Errorf("table: %w", err)
	}

	// Two behavioral fleet requests, strictly sequential so the second
	// trace is unambiguously newer than the first.
	req1, err := submitAndWait(base, deadline)
	if err != nil {
		return fmt.Errorf("fleet request 1: %w", err)
	}
	req2, err := submitAndWait(base, deadline)
	if err != nil {
		return fmt.Errorf("fleet request 2: %w", err)
	}
	log.Printf("fleet requests complete: %s then %s", req1, req2)

	// The retention gate: the sweeper must reclaim request 1's trace
	// (404 on its events endpoint) while request 2's trace still answers.
	if err := waitForEviction(base, req1, req2, deadline); err != nil {
		return err
	}

	// Every deletion is journaled: a retention.gc event on the
	// fleet-journal class with nonzero reclaimed bytes, carrying the
	// victim in "id" (never "trace" — the mirror would resurrect it).
	if err := checkGCJournal(journalPath); err != nil {
		return err
	}

	// The catalog view: all served work queryable, filters compose.
	if err := checkHistoryAPI(base, req1, req2); err != nil {
		return err
	}

	// Deep health reports the catalog and the sweeper's progress.
	if err := checkDeepHealth(base); err != nil {
		return err
	}

	// The retention metrics are exported.
	if err := checkMetrics(base); err != nil {
		return err
	}

	// The offline view: the swhistory CLI reads the same catalog.
	if err := checkCLI(historyBin, historyDir, req1, req2); err != nil {
		return err
	}

	// Leave the catalog behind for CI upload before the tempdir goes.
	data, err := os.ReadFile(filepath.Join(historyDir, "catalog.jsonl"))
	if err != nil {
		return err
	}
	if err := os.WriteFile(catalogPath, data, 0o644); err != nil {
		return err
	}
	log.Printf("ok: retention reclaimed the old trace, history stayed queryable; artifacts %s, %s", journalPath, catalogPath)
	return nil
}

// submitAndWait submits one behavioral XOR table request and waits for
// it to complete, returning the request ID.
func submitAndWait(base string, deadline time.Time) (string, error) {
	buf, _ := json.Marshal(map[string]any{"gate": "xor", "table": true, "shard": 2})
	resp, err := http.Post(base+"/v1/fleet/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		return "", err
	}
	var sub struct {
		ID string `json:"request_id"`
	}
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted || sub.ID == "" {
		return "", fmt.Errorf("submit answered %d with request_id %q", resp.StatusCode, sub.ID)
	}
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/fleet/jobs/" + sub.ID)
		if err != nil {
			return "", err
		}
		var st struct {
			State string `json:"state"`
		}
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			return "", err
		}
		switch st.State {
		case "complete":
			return sub.ID, nil
		case "failed":
			return "", fmt.Errorf("request %s failed", sub.ID)
		}
		time.Sleep(100 * time.Millisecond)
	}
	return "", fmt.Errorf("request %s not complete before the deadline", sub.ID)
}

// eventsStatus GETs the post-mortem events snapshot for a request and
// returns the HTTP status.
func eventsStatus(base, reqID string) (int, error) {
	resp, err := http.Get(base + "/v1/fleet/jobs/" + reqID + "/events?follow=false")
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode, nil
}

// waitForEviction polls until request 1's trace has been reclaimed
// (its events endpoint answers 404) and then asserts request 2's trace
// is still served in full.
func waitForEviction(base, req1, req2 string, deadline time.Time) error {
	for time.Now().Before(deadline) {
		code, err := eventsStatus(base, req1)
		if err != nil {
			return err
		}
		if code == http.StatusNotFound {
			code2, err := eventsStatus(base, req2)
			if err != nil {
				return err
			}
			if code2 != http.StatusOK {
				return fmt.Errorf("retained trace of %s answers %d, want 200", req2, code2)
			}
			log.Printf("retention evicted the trace of %s; the trace of %s survives", req1, req2)
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	return fmt.Errorf("trace of %s never evicted under -retain-traces 1", req1)
}

// checkGCJournal scans the coordinator journal for the retention.gc
// record of the reclaimed fleet-journal trace.
func checkGCJournal(journalPath string) error {
	f, err := os.Open(journalPath)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		var ev struct {
			Event  string         `json:"event"`
			Fields map[string]any `json:"fields"`
		}
		if json.Unmarshal(sc.Bytes(), &ev) != nil || ev.Event != "retention.gc" {
			continue
		}
		if tr, present := ev.Fields["trace"]; present {
			return fmt.Errorf("retention.gc carries a trace field (%v) — the coordinator mirror would resurrect the deleted file", tr)
		}
		class, _ := ev.Fields["class"].(string)
		bytes, _ := ev.Fields["bytes"].(float64)
		if class == "fleet-journal" && bytes > 0 {
			log.Printf("journaled retention.gc: class=%s id=%v bytes=%.0f", class, ev.Fields["id"], bytes)
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("no retention.gc event with class=fleet-journal and bytes>0 in %s", journalPath)
}

// historyPage mirrors the GET /v1/history response.
type historyPage struct {
	Records []struct {
		ID    string `json:"id"`
		Kind  string `json:"kind"`
		Gate  string `json:"gate"`
		Trace string `json:"trace"`
		Files []struct {
			Class string `json:"class"`
			Size  int64  `json:"size"`
		} `json:"files"`
	} `json:"records"`
	Count int `json:"count"`
	Total int `json:"total"`
}

func getHistory(base, query string) (historyPage, error) {
	var page historyPage
	resp, err := http.Get(base + "/v1/history" + query)
	if err != nil {
		return page, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return page, fmt.Errorf("GET /v1/history%s: status %d", query, resp.StatusCode)
	}
	return page, json.NewDecoder(resp.Body).Decode(&page)
}

// checkHistoryAPI asserts every piece of served work was indexed and
// the filters behave.
func checkHistoryAPI(base, req1, req2 string) error {
	page, err := getHistory(base, "")
	if err != nil {
		return err
	}
	kinds := map[string]int{}
	byID := map[string]bool{}
	for _, r := range page.Records {
		kinds[r.Kind]++
		byID[r.ID] = true
	}
	if kinds["eval"] != 2 || kinds["table"] != 1 || kinds["fleet"] != 2 {
		return fmt.Errorf("history kinds = %v, want 2 eval + 1 table + 2 fleet", kinds)
	}
	if !byID[req1] || !byID[req2] {
		return fmt.Errorf("history lacks a fleet request record (have %v, want %s and %s)", byID, req1, req2)
	}
	// The evicted request's history record survives eviction: the
	// catalog is the post-mortem index, not the data itself.
	fleetPage, err := getHistory(base, "?kind=fleet")
	if err != nil {
		return err
	}
	if fleetPage.Count != 2 {
		return fmt.Errorf("kind=fleet count = %d, want 2", fleetPage.Count)
	}
	for _, r := range fleetPage.Records {
		hasTrace := false
		for _, f := range r.Files {
			if f.Class == "fleet-journal" && f.Size > 0 {
				hasTrace = true
			}
		}
		if !hasTrace {
			return fmt.Errorf("fleet record %s has no sized fleet-journal file ref", r.ID)
		}
	}
	if p, err := getHistory(base, "?gate=xor"); err != nil || p.Count != 4 {
		return fmt.Errorf("gate=xor count = %d (%v), want 4 (2 evals + 2 fleet)", p.Count, err)
	}
	if p, err := getHistory(base, "?gate=maj3"); err != nil || p.Count != 1 {
		return fmt.Errorf("gate=maj3 count = %d (%v), want 1", p.Count, err)
	}
	log.Printf("history API: %d records (%v), filters answer correctly", page.Total, kinds)
	return nil
}

// checkDeepHealth asserts the deep health view carries the history
// section with sweeper progress.
func checkDeepHealth(base string) error {
	resp, err := http.Get(base + "/v1/healthz?deep=1")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var deep struct {
		History struct {
			Records   int `json:"records"`
			Retention struct {
				Sweeps  int64 `json:"sweeps"`
				Deleted int   `json:"deleted"`
			} `json:"retention"`
		} `json:"history"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&deep); err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("deep healthz status %d", resp.StatusCode)
	}
	if deep.History.Records < 5 {
		return fmt.Errorf("deep healthz history.records = %d, want >= 5", deep.History.Records)
	}
	if deep.History.Retention.Sweeps < 1 {
		return fmt.Errorf("deep healthz reports %d retention sweeps, want >= 1", deep.History.Retention.Sweeps)
	}
	log.Printf("deep health: %d records, %d sweeps", deep.History.Records, deep.History.Retention.Sweeps)
	return nil
}

// checkMetrics asserts the history/retention families are exported.
func checkMetrics(base string) error {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return err
	}
	for _, family := range []string{
		"spinwave_history_indexed_total",
		"spinwave_retention_sweeps_total",
		"spinwave_retention_deleted_total",
		"spinwave_retention_bytes_reclaimed_total",
	} {
		if !bytes.Contains(body, []byte(family)) {
			return fmt.Errorf("/metrics lacks %s", family)
		}
	}
	return nil
}

// checkCLI runs the built swhistory binary against the live catalog.
func checkCLI(historyBin, historyDir, req1, req2 string) error {
	out, err := exec.Command(historyBin, "-catalog", historyDir, "-kind", "fleet", "-json").Output()
	if err != nil {
		return fmt.Errorf("swhistory: %w", err)
	}
	var recs []struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(out, &recs); err != nil {
		return fmt.Errorf("swhistory JSON: %w", err)
	}
	ids := map[string]bool{}
	for _, r := range recs {
		ids[r.ID] = true
	}
	if len(recs) != 2 || !ids[req1] || !ids[req2] {
		return fmt.Errorf("swhistory -kind fleet returned %d records %v, want both %s and %s", len(recs), ids, req1, req2)
	}
	log.Printf("swhistory CLI answers: %d fleet records", len(recs))
	return nil
}

// postOK POSTs body as JSON and requires a 200.
func postOK(url string, body map[string]any) error {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s answered %d: %s", url, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	return nil
}

// waitForListen scans swserve's stderr for the "listening on" line and
// returns the base URL, then keeps draining the pipe.
func waitForListen(r interface{ Read([]byte) (int, error) }) (string, error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.Fields(line[i+len("listening on "):])[0]
			go func() {
				for sc.Scan() {
					fmt.Fprintln(os.Stderr, sc.Text())
				}
			}()
			return "http://" + addr, nil
		}
	}
	return "", fmt.Errorf("swserve exited before listening (scan err: %v)", sc.Err())
}

// Command checkpointsmoke is the CI gate for checkpoint/resume
// (DESIGN.md §15): it builds the real swsim binary, records a golden
// uninterrupted single-case run with full-precision JSON readouts, then
// runs the same case with checkpointing on and SIGKILLs the process the
// moment the first manifest commits — a crash with no warning, the
// failure mode checkpoints exist for. A third run with -resume must
// continue from the newest snapshot and land on readouts byte-identical
// to the golden run's.
//
//	go run ./tools/checkpointsmoke -journal checkpoint.jsonl
//
// The resumed run's journal is left behind for journalcheck and for the
// checkpoint.resume grep in the checkpoint-smoke make target; the
// resumed run's manifest is copied to -keep-manifest for CI artifact
// upload.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("checkpointsmoke: ")
	journalPath := flag.String("journal", "checkpoint.jsonl", "resumed run's journal output (validated by journalcheck afterwards)")
	keepManifest := flag.String("keep-manifest", "", "copy the newest checkpoint manifest here after the resume (CI artifact)")
	dtScale := flag.Float64("dt-scale", 0.5, "time-step scale; < 1 stretches the transient so the kill window is wide")
	timeout := flag.Duration("timeout", 3*time.Minute, "overall deadline for the smoke run")
	flag.Parse()

	if err := run(*journalPath, *keepManifest, *dtScale, *timeout); err != nil {
		log.Fatal(err)
	}
}

func run(journalPath, keepManifest string, dtScale float64, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	tmp, err := os.MkdirTemp("", "checkpointsmoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Build the real binary: the smoke exercises the shipped entrypoint.
	bin := filepath.Join(tmp, "swsim")
	build := exec.Command("go", "build", "-o", bin, "./cmd/swsim")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building ./cmd/swsim: %w", err)
	}

	dts := fmt.Sprintf("%g", dtScale)
	common := []string{"-gate", "xor", "-inputs", "10", "-dt-scale", dts}

	// Golden uninterrupted run. Checkpointing observes without altering
	// the trajectory, so this plain run is the reference the resumed run
	// must match byte for byte.
	golden := filepath.Join(tmp, "golden.json")
	cmd := exec.Command(bin, append(common, "-readout-json", golden)...)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("golden run: %w", err)
	}
	log.Printf("golden run complete")

	// Checkpointed run, SIGKILLed as soon as the first manifest commits:
	// no SIGTERM grace, no flush — the crash the checkpoints are for.
	ckDir := filepath.Join(tmp, "ckpt")
	cmd = exec.Command(bin, append(common,
		"-checkpoint", ckDir, "-checkpoint-every", "200")...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	killed := false
	for time.Now().Before(deadline) {
		if len(manifests(ckDir)) > 0 {
			if err := cmd.Process.Kill(); err != nil {
				return err
			}
			killed = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	cmd.Wait() //nolint:errcheck
	if !killed {
		return fmt.Errorf("no checkpoint manifest appeared in %s before the deadline", ckDir)
	}
	names := manifests(ckDir)
	if len(names) == 0 {
		return fmt.Errorf("killed the run but %s holds no committed manifest", ckDir)
	}
	log.Printf("killed checkpointed run mid-transient (SIGKILL), %d manifest(s) on disk", len(names))

	// Resume: must pick up the newest valid snapshot and finish with the
	// golden readouts exactly.
	resumed := filepath.Join(tmp, "resumed.json")
	cmd = exec.Command(bin, append(common,
		"-checkpoint", ckDir, "-checkpoint-every", "200", "-resume",
		"-readout-json", resumed, "-journal", journalPath)...)
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("resumed run: %w", err)
	}

	g, err := os.ReadFile(golden)
	if err != nil {
		return err
	}
	r, err := os.ReadFile(resumed)
	if err != nil {
		return err
	}
	if !bytes.Equal(g, r) {
		return fmt.Errorf("resumed readouts differ from the golden run:\ngolden:  %s\nresumed: %s", g, r)
	}
	log.Printf("resumed run matches the golden readouts byte for byte")

	// The journal must show the resume actually happened (step > 0), not
	// a silent from-scratch restart.
	j, err := os.ReadFile(journalPath)
	if err != nil {
		return err
	}
	if !strings.Contains(string(j), `"event":"checkpoint.resume"`) {
		return fmt.Errorf("resumed run journaled no checkpoint.resume event")
	}

	if keepManifest != "" {
		names = manifests(ckDir)
		data, err := os.ReadFile(filepath.Join(ckDir, names[len(names)-1]))
		if err != nil {
			return err
		}
		if err := os.WriteFile(keepManifest, data, 0o644); err != nil {
			return err
		}
		log.Printf("kept manifest %s as %s", names[len(names)-1], keepManifest)
	}
	return nil
}

// manifests lists the committed checkpoint manifests in dir, ascending
// by step (the zero-padded names sort lexically).
func manifests(dir string) []string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "ck-") && strings.HasSuffix(name, ".json") {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

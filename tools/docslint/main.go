// Command docslint enforces godoc coverage: every exported top-level
// identifier (types, functions, methods, consts, vars) in the listed
// package directories must carry a doc comment, and every package must
// have a package comment. It is the `make docs-lint` gate behind ISSUE
// 3's documentation acceptance criterion, equivalent to revive's
// "exported" rule but dependency-free.
//
//	go run ./tools/docslint . ./internal/llg ./internal/mag ./internal/core
//
// Exits non-zero listing each undocumented identifier as file:line.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"log"
	"os"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("docslint: ")
	if len(os.Args) < 2 {
		log.Fatal("usage: docslint <package-dir> ...")
	}
	var problems []string
	for _, dir := range os.Args[1:] {
		p, err := lintDir(dir)
		if err != nil {
			log.Fatal(err)
		}
		problems = append(problems, p...)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		log.Fatalf("%d undocumented exported identifiers", len(problems))
	}
}

// lintDir parses one package directory (tests excluded) and returns one
// "file:line: message" string per violation.
func lintDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", dir, err)
	}
	var problems []string
	report := func(pos token.Pos, format string, args ...any) {
		problems = append(problems, fmt.Sprintf("%s: %s", fset.Position(pos), fmt.Sprintf(format, args...)))
	}
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
		}
		for name, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || d.Doc != nil {
						continue
					}
					if d.Recv != nil {
						if rt := receiverTypeName(d.Recv); rt != "" && !ast.IsExported(rt) {
							continue // method on unexported type
						}
						report(d.Pos(), "exported method %s is undocumented", d.Name.Name)
					} else {
						report(d.Pos(), "exported function %s is undocumented", d.Name.Name)
					}
				case *ast.GenDecl:
					lintGenDecl(report, d)
				}
			}
			_ = name
		}
		if !hasPkgDoc && pkg.Name != "main" {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
	}
	return problems, nil
}

// lintGenDecl checks type/const/var declarations. A doc comment on the
// grouped declaration covers all of its specs (the standard convention
// for const blocks); otherwise each exported spec needs its own.
func lintGenDecl(report func(token.Pos, string, ...any), d *ast.GenDecl) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	blockDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && !blockDoc && s.Doc == nil {
				report(s.Pos(), "exported type %s is undocumented", s.Name.Name)
			}
		case *ast.ValueSpec:
			if blockDoc || s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, n := range s.Names {
				if n.IsExported() {
					report(n.Pos(), "exported %s %s is undocumented", strings.ToLower(d.Tok.String()), n.Name)
				}
			}
		}
	}
}

// receiverTypeName extracts the bare type name of a method receiver.
func receiverTypeName(recv *ast.FieldList) string {
	if recv == nil || len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}

// Command swdoctor scores finished runs from their flight-recorder
// artifacts: the JSONL run journal and, optionally, a probe CSV
// (DESIGN.md §11–12). It is the post-hoc half of the health monitor —
// where internal/health watches a run in flight, swdoctor audits what
// the run left behind.
//
//	swdoctor journal.jsonl
//	swdoctor -probes probes.csv journal.jsonl
//	swdoctor -fleet fleet-trace.jsonl
//
// From the journal it reconstructs each run's lifecycle (run.start →
// run.complete / run.error), collects its health alerts, and reads the
// recorded health.verdict. From the probe CSV it independently
// re-checks every sampled magnetization value for non-finite numbers
// and the linear-regime amplitude bound. Runs without a recorded
// verdict (health monitoring was off) get one derived from the
// evidence: run.error or a critical alert → violated, any other alert
// → degraded, else healthy.
//
// -fleet scores an assembled fleet job instead (DESIGN.md §16): the
// input is a merged multi-node journal — a coordinator store file or a
// downloaded /v1/fleet/jobs/{id}/events snapshot — and the report is
// the trace's fleet lifecycle accounting: per-node event counts,
// claims, requeues, checkpoint resumes, request completion, and
// per-node sequence regressions (which a healthy shipping plane never
// produces). A trace with sequence violations or without an observed
// completion is a violated finding.
//
// Prints a per-run report and exits non-zero when any run is violated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"spinwave/internal/obsplane"
	"spinwave/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("swdoctor: ")
	os.Exit(run())
}

func run() int {
	probesPath := flag.String("probes", "", "probe CSV (t,<name>.mx,... rows) to audit alongside the journal")
	ampMax := flag.Float64("amplitude-max", 0.5, "linear-regime bound on the in-plane probe amplitude")
	fleetMode := flag.Bool("fleet", false, "score a merged multi-node fleet journal (trace lifecycle accounting)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Print("usage: swdoctor [-fleet] [-probes probes.csv] <journal.jsonl>")
		return 2
	}
	if *fleetMode {
		return runFleet(flag.Arg(0))
	}

	runs, order, err := readJournal(flag.Arg(0))
	if err != nil {
		log.Print(err)
		return 2
	}
	var audit *probeAudit
	if *probesPath != "" {
		audit, err = auditProbes(*probesPath, *ampMax)
		if err != nil {
			log.Print(err)
			return 2
		}
	}

	violated := 0
	t := report.NewTable("run health report: "+flag.Arg(0),
		"run", "verdict", "alerts", "worst rule", "lifecycle")
	for _, id := range order {
		r := runs[id]
		verdict, derived := r.verdict()
		if verdict == "violated" {
			violated++
		}
		note := ""
		if derived {
			note = " (derived)"
		}
		t.AddRow(id, verdict+note, fmt.Sprintf("%d", len(r.alerts)), r.worstRule(), r.lifecycle())
	}
	fmt.Print(t.String())

	if audit != nil {
		fmt.Printf("probe audit: %d samples, %d probes, max in-plane amplitude %.4g\n",
			audit.samples, audit.probes, audit.maxAmp)
		if audit.nonFinite > 0 {
			fmt.Printf("probe audit: VIOLATED — %d non-finite sample value(s)\n", audit.nonFinite)
			violated++
		} else if audit.maxAmp > *ampMax {
			fmt.Printf("probe audit: degraded — amplitude %.4g exceeds linear-regime bound %.4g\n",
				audit.maxAmp, *ampMax)
		}
	}

	if violated > 0 {
		fmt.Printf("swdoctor: %d violated finding(s)\n", violated)
		return 1
	}
	fmt.Println("swdoctor: all runs healthy or degraded")
	return 0
}

// runFleet scores a merged fleet journal: it re-merges the events into
// canonical (node, seq) order, folds them into the trace's lifecycle
// summary, and prints the accounting a post-mortem starts from.
func runFleet(path string) int {
	events, skipped, err := readFleetJournal(path)
	if err != nil {
		log.Print(err)
		return 2
	}
	if len(events) == 0 {
		log.Printf("%s: no fleet events", path)
		return 2
	}
	sum := obsplane.Summarize(obsplane.MergeEvents(events))

	nodes := make([]string, 0, len(sum.Nodes))
	for n := range sum.Nodes {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)

	t := report.NewTable("fleet trace report: "+path, "node", "events")
	for _, n := range nodes {
		t.AddRow(n, fmt.Sprintf("%d", sum.Nodes[n]))
	}
	fmt.Print(t.String())
	trace := sum.Trace
	if trace == "" {
		trace = "-"
	}
	fmt.Printf("trace %s: %d claims, %d requeues, %d resumes, %d request updates",
		trace, sum.Claims, sum.Requeues, sum.Resumes, sum.Requests)
	if skipped > 0 {
		fmt.Printf(" (%d framing lines skipped)", skipped)
	}
	fmt.Println()

	violated := 0
	if sum.SeqViolations > 0 {
		fmt.Printf("swdoctor: VIOLATED — %d per-node sequence regression(s)\n", sum.SeqViolations)
		violated++
	}
	if !sum.Complete {
		fmt.Println("swdoctor: VIOLATED — no fleet.request completion observed for this trace")
		violated++
	}
	if violated > 0 {
		fmt.Printf("swdoctor: %d violated finding(s)\n", violated)
		return 1
	}
	fmt.Printf("swdoctor: trace %s complete across %d node(s)\n", trace, len(sum.Nodes))
	return 0
}

// readFleetJournal parses a merged fleet journal into shipped events,
// skipping NDJSON framing lines (heartbeat / server_draining carry no
// node) so a live-tail download scores the same as a store file.
func readFleetJournal(path string) (events []obsplane.ShippedEvent, skipped int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		var se obsplane.ShippedEvent
		if err := json.Unmarshal(sc.Bytes(), &se); err != nil {
			return nil, 0, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if se.Node == "" {
			skipped++
			continue
		}
		events = append(events, se)
	}
	return events, skipped, sc.Err()
}

// runRecord accumulates the journal evidence for one run.
type runRecord struct {
	started  bool
	complete bool
	errored  bool
	alerts   []alert
	recorded string // verdict from the health.verdict event, if any
}

type alert struct {
	rule     string
	severity string
}

// verdict returns the run's verdict and whether it was derived from
// evidence rather than recorded by the in-flight monitor.
func (r *runRecord) verdict() (string, bool) {
	if r.recorded != "" {
		return r.recorded, false
	}
	switch {
	case r.errored:
		return "violated", true
	case r.hasSeverity("critical"):
		return "violated", true
	case len(r.alerts) > 0:
		return "degraded", true
	default:
		return "healthy", true
	}
}

func (r *runRecord) hasSeverity(sev string) bool {
	for _, a := range r.alerts {
		if a.severity == sev {
			return true
		}
	}
	return false
}

// worstRule names the rule behind the most severe alert, "-" if none.
func (r *runRecord) worstRule() string {
	rank := map[string]int{"info": 1, "warn": 2, "critical": 3}
	worst, best := "-", 0
	for _, a := range r.alerts {
		if rank[a.severity] > best {
			best, worst = rank[a.severity], a.rule
		}
	}
	return worst
}

// lifecycle summarizes the run.start → terminal bracket.
func (r *runRecord) lifecycle() string {
	switch {
	case !r.started:
		return "no run.start"
	case r.errored:
		return "run.error"
	case r.complete:
		return "complete"
	default:
		return "unterminated"
	}
}

// readJournal scans a JSONL journal, folding events into per-run
// records; order preserves first-seen run order for stable output.
func readJournal(path string) (map[string]*runRecord, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	runs := make(map[string]*runRecord)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		var ev struct {
			Event  string `json:"event"`
			Run    string `json:"run"`
			Fields struct {
				Rule     string `json:"rule"`
				Severity string `json:"severity"`
				Verdict  string `json:"verdict"`
			} `json:"fields"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		if ev.Run == "" {
			continue
		}
		r := runs[ev.Run]
		if r == nil {
			r = &runRecord{}
			runs[ev.Run] = r
			order = append(order, ev.Run)
		}
		switch ev.Event {
		case "run.start":
			r.started = true
		case "run.complete":
			r.complete = true
		case "run.error":
			r.errored = true
		case "alert":
			r.alerts = append(r.alerts, alert{rule: ev.Fields.Rule, severity: ev.Fields.Severity})
		case "health.verdict":
			r.recorded = ev.Fields.Verdict
		}
	}
	return runs, order, sc.Err()
}

// probeAudit is the independent pass over the probe CSV.
type probeAudit struct {
	samples   int
	probes    int
	nonFinite int
	maxAmp    float64 // max in-plane sqrt(mx²+my²) over all probes
}

// auditProbes re-checks a probe CSV (header t,<name>.mx,<name>.my,
// <name>.mz,...) for non-finite values and the peak in-plane amplitude.
func auditProbes(path string, ampMax float64) (*probeAudit, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("%s: empty file (no header)", path)
	}
	header := strings.Split(sc.Text(), ",")
	if header[0] != "t" {
		return nil, fmt.Errorf("%s: first column is %q, want t", path, header[0])
	}
	if (len(header)-1)%3 != 0 {
		return nil, fmt.Errorf("%s: %d data columns, want a multiple of 3 (mx/my/mz per probe)", path, len(header)-1)
	}
	a := &probeAudit{probes: (len(header) - 1) / 3}
	line := 1
	for sc.Scan() {
		line++
		fields := strings.Split(sc.Text(), ",")
		if len(fields) != len(header) {
			return nil, fmt.Errorf("%s:%d: %d columns, header has %d", path, line, len(fields), len(header))
		}
		a.samples++
		for p := 0; p < a.probes; p++ {
			mx, err1 := strconv.ParseFloat(fields[1+3*p], 64)
			my, err2 := strconv.ParseFloat(fields[2+3*p], 64)
			mz, err3 := strconv.ParseFloat(fields[3+3*p], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("%s:%d: non-numeric sample", path, line)
			}
			if !finite(mx) || !finite(my) || !finite(mz) {
				a.nonFinite++
				continue
			}
			if amp := math.Sqrt(mx*mx + my*my); amp > a.maxAmp {
				a.maxAmp = amp
			}
		}
	}
	return a, sc.Err()
}

func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Command journalcheck validates a run-journal JSONL file against the
// journal schema (DESIGN.md §11): every line must be a JSON object with
// a positive integer "seq", an integer "time_ns", a string "event" (and
// a string "run" when present); sequence numbers must be strictly
// increasing over the file; per run, lifecycle ordering must hold —
// no run.settled/run.lockin/run.complete before that run's run.start,
// and nothing after its run.complete or run.error; and health events
// (DESIGN.md §12) must carry their required fields — "alert" needs a
// non-empty "rule" and a "severity" of info/warn/critical, and
// "health.verdict" needs a "verdict" of healthy/degraded/violated.
// Retention/history events (DESIGN.md §17) are schema-checked in both
// modes: "retention.gc" needs a class, a reason, a non-negative byte
// count and no "trace" field; "history.indexed" needs the record's id
// and kind, with any trace stamp a non-empty string.
//
//	go run ./tools/journalcheck journal.jsonl
//	go run ./tools/journalcheck -fleet fleet-journal.jsonl
//
// -fleet validates a merged multi-node fleet journal instead (DESIGN.md
// §16) — the coordinator's per-trace store files or a downloaded
// /v1/fleet/jobs/{id}/events snapshot. There every line must also name
// its emitting "node" and its "trace", sequence numbers are strictly
// increasing per node (not globally — the merge interleaves nodes),
// NDJSON framing lines (heartbeat / server_draining) are tolerated,
// fleet.journal_shipped receipts must name the shipping node and a
// non-negative event count, and fleet.requeue events must name the
// parent request (the post-mortem joinability fix). Lifecycle ordering
// is not enforced per run in fleet mode: a requeued run legitimately
// re-starts on a peer node.
//
// It is the CI gate behind the probed-simulation smoke job: a journal
// that drops events, reorders them, or emits malformed lines fails the
// build. Exits non-zero listing each violation as line:N.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("journalcheck: ")
	fleetMode := flag.Bool("fleet", false, "validate a merged multi-node fleet journal (per-node seq ordering, node/trace stamps)")
	flag.Parse()
	if flag.NArg() != 1 {
		log.Fatal("usage: journalcheck [-fleet] <journal.jsonl>")
	}
	path := flag.Arg(0)
	f, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()

	var problems []string
	var lines int
	if *fleetMode {
		problems, lines, err = checkFleet(f)
	} else {
		problems, lines, err = check(f)
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		log.Fatalf("%d violation(s) in %d line(s)", len(problems), lines)
	}
	fmt.Printf("journalcheck: %s ok (%d events)\n", path, lines)
}

// checkFleet validates a merged fleet journal: per-node monotonic
// sequence numbers, node and trace stamps on every event, and the
// fleet event schemas.
func checkFleet(f *os.File) (problems []string, lines int, err error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	lastSeq := make(map[string]uint64)
	for sc.Scan() {
		lines++
		at := func(format string, args ...any) {
			problems = append(problems, fmt.Sprintf("line:%d: %s", lines, fmt.Sprintf(format, args...)))
		}
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			at("not a JSON object: %v", err)
			continue
		}
		name, ok := stringField(raw, "event")
		if !ok || name == "" {
			at(`missing or empty string "event"`)
			continue
		}
		// NDJSON framing lines from a live tail download carry no node or
		// sequence; they are stream chrome, not journal events.
		if _, hasNode := raw["node"]; !hasNode && (name == "heartbeat" || name == "server_draining") {
			continue
		}
		node, ok := stringField(raw, "node")
		if !ok || node == "" {
			at(`missing or empty string "node"`)
			continue
		}
		if trace, ok := stringField(raw, "trace"); !ok || trace == "" {
			at(`missing or empty string "trace"`)
		}
		seq, ok := uintField(raw, "seq")
		if !ok {
			at(`missing or non-positive-integer "seq"`)
		} else {
			if seq <= lastSeq[node] {
				at(`node %s "seq" %d not strictly increasing (previous %d)`, node, seq, lastSeq[node])
			}
			lastSeq[node] = seq
		}
		if _, ok := intField(raw, "time_ns"); !ok {
			at(`missing or non-integer "time_ns"`)
		}
		fields := nestedFields(raw)
		switch name {
		case "fleet.journal_shipped":
			if n, ok := stringField(fields, "node"); !ok || n == "" {
				at(`fleet.journal_shipped missing non-empty string "node"`)
			}
			if n, ok := intField(fields, "events"); !ok || n < 0 {
				at(`fleet.journal_shipped missing non-negative integer "events"`)
			}
		case "fleet.requeue":
			if req, ok := stringField(fields, "request"); !ok || req == "" {
				at(`fleet.requeue missing non-empty string "request"`)
			}
		case "alert":
			if rule, ok := stringField(fields, "rule"); !ok || rule == "" {
				at(`alert missing non-empty string "rule"`)
			}
			if sev, ok := stringField(fields, "severity"); !ok || !validSeverity(sev) {
				at(`alert "severity" must be one of info/warn/critical, got %s`, fields["severity"])
			}
		case "health.verdict":
			if v, ok := stringField(fields, "verdict"); !ok || !validVerdict(v) {
				at(`health.verdict "verdict" must be one of healthy/degraded/violated, got %s`, fields["verdict"])
			}
		case "retention.gc":
			checkRetentionGC(fields, at)
		case "history.indexed":
			checkHistoryIndexed(fields, at)
		}
	}
	return problems, lines, sc.Err()
}

// checkRetentionGC validates one retention.gc payload (DESIGN.md §17):
// a deletion must name its retention class and reason and account for
// the bytes it reclaimed. It must NOT carry a "trace" field — the
// coordinator mirror files trace-stamped events back into the trace's
// store file, which would resurrect the journal the sweep just deleted.
func checkRetentionGC(fields map[string]json.RawMessage, at func(string, ...any)) {
	if c, ok := stringField(fields, "class"); !ok || c == "" {
		at(`retention.gc missing non-empty string "class"`)
	}
	if b, ok := intField(fields, "bytes"); !ok || b < 0 {
		at(`retention.gc missing non-negative integer "bytes"`)
	}
	if r, ok := stringField(fields, "reason"); !ok || r == "" {
		at(`retention.gc missing non-empty string "reason"`)
	}
	if _, present := fields["trace"]; present {
		at(`retention.gc must not carry a "trace" field (the coordinator mirror would resurrect the deleted trace file)`)
	}
}

// checkHistoryIndexed validates one history.indexed payload (DESIGN.md
// §17): the catalog record's ID and kind are required; a trace stamp,
// when present, must be a non-empty string.
func checkHistoryIndexed(fields map[string]json.RawMessage, at func(string, ...any)) {
	if id, ok := stringField(fields, "id"); !ok || id == "" {
		at(`history.indexed missing non-empty string "id"`)
	}
	if k, ok := stringField(fields, "kind"); !ok || k == "" {
		at(`history.indexed missing non-empty string "kind"`)
	}
	if _, present := fields["trace"]; present {
		if tr, ok := stringField(fields, "trace"); !ok || tr == "" {
			at(`history.indexed "trace" stamp must be a non-empty string`)
		}
	}
}

// runState tracks per-run lifecycle progress.
type runState struct {
	started bool
	ended   bool // run.complete or run.error seen
}

// check scans the journal and returns schema violations as
// "line:N: ..." strings plus the number of lines read.
func check(f *os.File) (problems []string, lines int, err error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var lastSeq uint64
	runs := make(map[string]*runState)
	for sc.Scan() {
		lines++
		at := func(format string, args ...any) {
			problems = append(problems, fmt.Sprintf("line:%d: %s", lines, fmt.Sprintf(format, args...)))
		}
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			at("not a JSON object: %v", err)
			continue
		}
		seq, ok := uintField(raw, "seq")
		if !ok {
			at(`missing or non-positive-integer "seq"`)
		} else {
			if seq <= lastSeq {
				at(`"seq" %d not strictly increasing (previous %d)`, seq, lastSeq)
			}
			lastSeq = seq
		}
		if _, ok := intField(raw, "time_ns"); !ok {
			at(`missing or non-integer "time_ns"`)
		}
		name, ok := stringField(raw, "event")
		if !ok || name == "" {
			at(`missing or empty string "event"`)
			continue
		}
		run := ""
		if _, present := raw["run"]; present {
			if run, ok = stringField(raw, "run"); !ok {
				at(`"run" is not a string`)
				continue
			}
		}
		// Health events (internal/health) have a schema of their own,
		// whether or not they carry a run ID; their payload lives in the
		// nested "fields" object.
		switch name {
		case "alert":
			fields := nestedFields(raw)
			if rule, ok := stringField(fields, "rule"); !ok || rule == "" {
				at(`alert missing non-empty string "rule"`)
			}
			if sev, ok := stringField(fields, "severity"); !ok || !validSeverity(sev) {
				at(`alert "severity" must be one of info/warn/critical, got %s`, fields["severity"])
			}
		case "health.verdict":
			fields := nestedFields(raw)
			if v, ok := stringField(fields, "verdict"); !ok || !validVerdict(v) {
				at(`health.verdict "verdict" must be one of healthy/degraded/violated, got %s`, fields["verdict"])
			}
		case "retention.gc":
			checkRetentionGC(nestedFields(raw), at)
		case "history.indexed":
			checkHistoryIndexed(nestedFields(raw), at)
		}
		if run == "" {
			continue // process-level event: no lifecycle to track
		}
		st := runs[run]
		if st == nil {
			st = &runState{}
			runs[run] = st
		}
		// Lifecycle ordering is checked for the backend's run.* namespace
		// only: engine events (engine.eval.done) legitimately bracket the
		// backend lifecycle on both sides.
		if st.ended && strings.HasPrefix(name, "run.") {
			at("event %q for run %s after its terminal run.complete/run.error", name, run)
		}
		switch name {
		case "run.start":
			if st.started {
				at("duplicate run.start for run %s", run)
			}
			st.started = true
		case "run.settled", "run.lockin", "run.complete", "run.error":
			if !st.started {
				at("%s for run %s before its run.start", name, run)
			}
			if name == "run.complete" || name == "run.error" {
				st.ended = true
			}
		}
	}
	return problems, lines, sc.Err()
}

// nestedFields unpacks the event's "fields" payload object (empty map
// when absent or malformed — the field checks then report it missing).
func nestedFields(raw map[string]json.RawMessage) map[string]json.RawMessage {
	v, ok := raw["fields"]
	if !ok {
		return nil
	}
	var fields map[string]json.RawMessage
	if err := json.Unmarshal(v, &fields); err != nil {
		return nil
	}
	return fields
}

// validSeverity reports whether s is a legal alert severity.
func validSeverity(s string) bool {
	return s == "info" || s == "warn" || s == "critical"
}

// validVerdict reports whether s is a legal run health verdict.
func validVerdict(s string) bool {
	return s == "healthy" || s == "degraded" || s == "violated"
}

// uintField extracts a positive integer field.
func uintField(raw map[string]json.RawMessage, key string) (uint64, bool) {
	v, ok := raw[key]
	if !ok {
		return 0, false
	}
	var n uint64
	if err := json.Unmarshal(v, &n); err != nil || n == 0 {
		return 0, false
	}
	return n, true
}

// intField extracts an integer field.
func intField(raw map[string]json.RawMessage, key string) (int64, bool) {
	v, ok := raw[key]
	if !ok {
		return 0, false
	}
	var n int64
	if err := json.Unmarshal(v, &n); err != nil {
		return 0, false
	}
	return n, true
}

// stringField extracts a string field.
func stringField(raw map[string]json.RawMessage, key string) (string, bool) {
	v, ok := raw[key]
	if !ok {
		return "", false
	}
	var s string
	if err := json.Unmarshal(v, &s); err != nil {
		return "", false
	}
	return s, true
}

// Command fleetsmoke is the CI gate for the distributed evaluation
// fleet: it builds the real swserve and swworker binaries, boots a
// coordinator with a durable queue and a short lease, attaches two
// workers, submits the full XOR truth table sharded one case per job —
// then SIGKILLs whichever worker is holding a job mid-evaluation and
// requires the request to complete anyway through lease expiry and
// requeue. It exits non-zero if the table does not complete, loses a
// case, or decodes incorrectly.
//
// A second phase gates the checkpointed long-transient path (DESIGN.md
// §15): a single micromagnetic case split into three resumable segments
// over the run-artifact store. The worker holding a segment is
// SIGKILLed after its first checkpoint lands, and a peer must finish
// the run by resuming from that checkpoint — proved by a journaled
// checkpoint.resume with a nonzero step on the surviving worker and by
// readouts exactly equal to an uninterrupted in-process run.
//
// Between the phases the smoke gates the observability plane (DESIGN.md
// §16): the request's trace ID is read from its status, the merged
// multi-node journal is downloaded from /v1/fleet/jobs/{id}/events and
// the assembled Chrome trace from /v1/fleet/jobs/{id}/trace — and the
// run fails unless the SIGKILLed worker's shipped events survived at
// the coordinator and the trace spans at least two nodes. Both
// downloads are left behind as artifacts for journalcheck -fleet,
// swdoctor -fleet, and CI upload.
//
//	go run ./tools/fleetsmoke -journal fleet.jsonl -events fleet-trace.jsonl -trace fleet-trace.json
//
// The journal written by the coordinator is left behind for
// journalcheck and for the fleet.claim / fleet.requeue greps in the
// fleet-smoke make target.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"syscall"
	"time"

	"spinwave"
	"spinwave/internal/obsplane"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetsmoke: ")
	journalPath := flag.String("journal", "fleet.jsonl", "coordinator journal output (validated by journalcheck afterwards)")
	eventsPath := flag.String("events", "fleet-trace.jsonl", "merged fleet journal snapshot download (validated by journalcheck/swdoctor -fleet)")
	tracePath := flag.String("trace", "fleet-trace.json", "assembled Chrome trace JSON download (CI artifact)")
	timeout := flag.Duration("timeout", 3*time.Minute, "overall deadline for the smoke run")
	flag.Parse()

	if err := run(*journalPath, *eventsPath, *tracePath, *timeout); err != nil {
		log.Fatal(err)
	}
}

func run(journalPath, eventsPath, tracePath string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	tmp, err := os.MkdirTemp("", "fleetsmoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// swserve appends to its -journal (recovery events from earlier
	// incarnations matter in production), so a stale file from a
	// previous smoke run would fail journalcheck's strict sequence
	// check. The smoke wants exactly one incarnation's journal.
	if err := os.Remove(journalPath); err != nil && !os.IsNotExist(err) {
		return err
	}

	// Build the real binaries: the smoke test exercises the shipped
	// entrypoints, not in-process stand-ins.
	serveBin := filepath.Join(tmp, "swserve")
	workerBin := filepath.Join(tmp, "swworker")
	for bin, pkg := range map[string]string{serveBin: "./cmd/swserve", workerBin: "./cmd/swworker"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("building %s: %w", pkg, err)
		}
	}

	// Coordinator on an ephemeral port with a short lease so the killed
	// worker's job requeues within seconds. The artifact store backs the
	// checkpointed-transient phase.
	queueDir := filepath.Join(tmp, "queue")
	serve := exec.Command(serveBin,
		"-addr", "127.0.0.1:0",
		"-fleet-queue", queueDir,
		"-fleet-lease", "2s",
		"-artifacts", filepath.Join(tmp, "artifacts"),
		"-journal", journalPath,
		"-workers", "2")
	stderr, err := serve.StderrPipe()
	if err != nil {
		return err
	}
	if err := serve.Start(); err != nil {
		return err
	}
	defer func() {
		serve.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		serve.Wait()                          //nolint:errcheck
	}()

	base, err := waitForListen(stderr)
	if err != nil {
		return err
	}
	log.Printf("coordinator at %s", base)

	// Two workers with a per-case delay long enough that a job is
	// reliably in flight when we shoot one of them. Each writes its own
	// journal so the transient phase can prove a resume on the survivor.
	workers := make(map[string]*exec.Cmd, 3)
	journals := make(map[string]string, 3)
	startWorker := func(id string) error {
		journals[id] = filepath.Join(tmp, id+".jsonl")
		w := exec.Command(workerBin,
			"-coordinator", base,
			"-id", id,
			"-workers", "2",
			"-poll", "100ms",
			"-case-delay", "1500ms",
			"-journal", journals[id])
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			return err
		}
		workers[id] = w
		return nil
	}
	for _, id := range []string{"smoke-w1", "smoke-w2"} {
		if err := startWorker(id); err != nil {
			return err
		}
	}
	defer func() {
		for _, w := range workers {
			w.Process.Signal(syscall.SIGTERM) //nolint:errcheck
			w.Wait()                          //nolint:errcheck
		}
	}()

	// Full XOR table, one case per job: four jobs across two workers.
	reqID, err := submit(base, map[string]any{"gate": "xor", "table": true, "shard": 1})
	if err != nil {
		return err
	}
	log.Printf("submitted request %s (xor table, shard 1)", reqID)

	// Kill whichever worker claims a job first, while it is mid-case.
	victim, err := waitForActiveWorker(base, deadline)
	if err != nil {
		return err
	}
	proc, ok := workers[victim]
	if !ok {
		return fmt.Errorf("coordinator reports unknown active worker %q", victim)
	}
	// The journal shipper's contract is "a SIGKILL loses at most one
	// flush interval": give the victim two intervals to land its claim's
	// traced events at the coordinator, still well inside the 1500ms
	// case delay, so the post-mortem gate below has a tail to find.
	time.Sleep(3 * obsplane.DefaultFlushEvery)
	if err := proc.Process.Kill(); err != nil {
		return err
	}
	proc.Wait() //nolint:errcheck
	delete(workers, victim)
	log.Printf("killed worker %s mid-job (SIGKILL)", victim)

	// The survivor must finish the whole table through requeue.
	st, err := waitForComplete(base, reqID, deadline)
	if err != nil {
		return err
	}
	if st.CasesDone != st.CasesTotal {
		return fmt.Errorf("cases lost: %d/%d done", st.CasesDone, st.CasesTotal)
	}
	if st.Table == nil {
		return fmt.Errorf("completed request has no assembled table")
	}
	if len(st.Table.Cases) != 4 {
		return fmt.Errorf("table has %d cases, want 4", len(st.Table.Cases))
	}
	for _, c := range st.Table.Cases {
		want := c.Inputs[0] != c.Inputs[1]
		for _, o := range c.Outputs {
			if o.Logic != want {
				return fmt.Errorf("case %v %s decoded %v, want %v", c.Inputs, o.Name, o.Logic, want)
			}
		}
	}
	requeued := false
	for _, j := range st.Jobs {
		if j.Attempts > 1 {
			requeued = true
		}
	}
	if !requeued {
		return fmt.Errorf("no job needed a second attempt — the kill missed its window")
	}
	log.Printf("request %s complete after worker loss: %d/%d cases, table decodes correctly",
		reqID, st.CasesDone, st.CasesTotal)

	// The post-mortem gate: the dead worker's journal tail must have
	// survived at the coordinator, queryable by the request ID alone.
	if err := observabilityPhase(base, reqID, victim, eventsPath, tracePath); err != nil {
		return err
	}

	// Phase 2: the checkpointed transient. Restore the fleet to two
	// workers first — the phase kills one of them again.
	if err := startWorker("smoke-w3"); err != nil {
		return err
	}
	return transientPhase(base, workers, journals, deadline)
}

// observabilityPhase downloads the completed request's merged fleet
// journal and assembled Chrome trace, saves both as artifacts, and
// fails unless the SIGKILLed worker's shipped events are present and
// the trace spans at least two nodes.
func observabilityPhase(base, reqID, victim, eventsPath, tracePath string) error {
	// The trace ID travels on the request status — a post-mortem can
	// start from either ID, but the smoke asserts the correlation chain.
	resp, err := http.Get(base + "/v1/fleet/jobs/" + reqID)
	if err != nil {
		return err
	}
	var withTrace struct {
		Trace string `json:"trace"`
	}
	err = json.NewDecoder(resp.Body).Decode(&withTrace)
	resp.Body.Close()
	if err != nil {
		return err
	}
	if withTrace.Trace == "" {
		return fmt.Errorf("completed request %s reports no trace ID", reqID)
	}

	// Merged journal snapshot: every event must carry the request's
	// trace, per-node events must include the dead worker's.
	body, err := download(base+"/v1/fleet/jobs/"+reqID+"/events?follow=false", eventsPath)
	if err != nil {
		return fmt.Errorf("fleet journal download: %w", err)
	}
	nodes := make(map[string]int)
	sc := bufio.NewScanner(bytes.NewReader(body))
	sc.Buffer(make([]byte, 0, 1<<20), 16<<20)
	for sc.Scan() {
		var ev struct {
			Node  string `json:"node"`
			Trace string `json:"trace"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("fleet journal line %q: %w", sc.Text(), err)
		}
		if ev.Node == "" {
			continue // NDJSON framing (heartbeat / server_draining)
		}
		if ev.Trace != withTrace.Trace {
			return fmt.Errorf("fleet journal event on node %s carries trace %q, want %q", ev.Node, ev.Trace, withTrace.Trace)
		}
		nodes[ev.Node]++
	}
	if nodes[victim] == 0 {
		return fmt.Errorf("dead worker %s has no events in the coordinator's fleet journal (nodes: %v)", victim, nodes)
	}
	if len(nodes) < 2 {
		return fmt.Errorf("fleet journal spans %d node(s), want at least 2 (nodes: %v)", len(nodes), nodes)
	}

	// Assembled Chrome trace: well-formed JSON with events, naming the
	// dead worker's row.
	body, err = download(base+"/v1/fleet/jobs/"+reqID+"/trace", tracePath)
	if err != nil {
		return fmt.Errorf("fleet trace download: %w", err)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &chrome); err != nil {
		return fmt.Errorf("fleet trace JSON: %w", err)
	}
	if len(chrome.TraceEvents) == 0 {
		return fmt.Errorf("fleet trace has no traceEvents")
	}
	if !bytes.Contains(body, []byte(victim)) {
		return fmt.Errorf("fleet trace does not name the dead worker %s", victim)
	}
	log.Printf("post-mortem gate: trace %s spans %d nodes incl. dead %s (%d events from it); artifacts %s, %s",
		withTrace.Trace, len(nodes), victim, nodes[victim], eventsPath, tracePath)
	return nil
}

// download GETs url, saves the body to path, and returns it.
func download(url, path string) ([]byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return body, os.WriteFile(path, body, 0o644)
}

// transientPhase submits one micromagnetic XOR case split into three
// resumable segments, SIGKILLs the worker holding a segment once its
// first checkpoint has landed in the artifact store, and requires a
// peer to finish the run by resuming — with readouts exactly equal to
// an uninterrupted run of the same configuration.
func transientPhase(base string, workers map[string]*exec.Cmd, journals map[string]string, deadline time.Time) error {
	const dtScale = 0.3 // stretch each segment so the kill lands mid-flight
	inputs := []bool{true, false}

	reqID, err := submit(base, map[string]any{
		"gate": "xor", "backend": "micromag", "spec": "reduced",
		"cases": [][]bool{inputs}, "segments": 3, "every_steps": 150, "dt_scale": dtScale,
	})
	if err != nil {
		return fmt.Errorf("transient submit: %w", err)
	}
	run, err := requestRun(base, reqID)
	if err != nil {
		return err
	}
	log.Printf("submitted transient request %s (run %s, 3 segments)", reqID, run)

	// The golden readouts: the identical configuration run uninterrupted
	// in-process. Checkpoint segmentation must not change a single bit.
	m, err := spinwave.NewMicromagnetic(spinwave.XOR, spinwave.MicromagConfig{
		Spec: spinwave.ReducedSpec(), Mat: spinwave.FeCoB(), DtScale: dtScale,
	})
	if err != nil {
		return err
	}
	golden, err := m.Run(inputs)
	if err != nil {
		return err
	}

	// Kill the worker holding a segment, but only after a checkpoint has
	// landed durably — the peer must have something to resume from.
	victim := ""
	for time.Now().Before(deadline) {
		if !artifactsHaveManifest(base, run) {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		if victim, err = activeWorker(base); err == nil && victim != "" {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	proc, ok := workers[victim]
	if !ok {
		return fmt.Errorf("no worker held a transient segment after a checkpoint landed (victim %q)", victim)
	}
	if err := proc.Process.Kill(); err != nil {
		return err
	}
	proc.Wait() //nolint:errcheck
	delete(workers, victim)
	log.Printf("killed worker %s mid-segment (SIGKILL), checkpoint already durable", victim)

	st, err := waitForComplete(base, reqID, deadline)
	if err != nil {
		return err
	}
	if len(st.Results) != 1 {
		return fmt.Errorf("transient completed with %d results, want 1", len(st.Results))
	}
	for name, want := range golden {
		got, ok := st.Results[0].Outputs[name]
		if !ok {
			return fmt.Errorf("transient result lacks output %s", name)
		}
		if got.Amplitude != want.Amplitude || got.Phase != want.Phase {
			return fmt.Errorf("output %s differs from the uninterrupted run: got (%.17g, %.17g), want (%.17g, %.17g)",
				name, got.Amplitude, got.Phase, want.Amplitude, want.Phase)
		}
	}
	retried := false
	for _, j := range st.Jobs {
		if j.Attempts > 1 {
			retried = true
		}
	}
	if !retried {
		return fmt.Errorf("no segment needed a second attempt — the kill missed its window")
	}

	// The decisive check: a surviving worker resumed from a checkpoint
	// (step > 0) instead of silently restarting the transient.
	if err := survivorResumed(workers, journals); err != nil {
		return err
	}

	// Post-mortem artifacts: each completed segment uploads its probe
	// time-series CSV next to the checkpoints, so the run's physics is
	// inspectable without rerunning it.
	if err := probeCSVsUploaded(base, run); err != nil {
		return err
	}
	log.Printf("transient request %s complete after worker loss: readouts exactly match the uninterrupted run", reqID)
	return nil
}

// probeCSVsUploaded asserts the run's artifact listing contains at
// least one non-empty per-segment probe CSV (probes-sNN.csv).
func probeCSVsUploaded(base, run string) error {
	resp, err := http.Get(base + "/v1/runs/" + run + "/artifacts")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var list struct {
		Artifacts []struct {
			Name string `json:"name"`
			Size int64  `json:"size"`
		} `json:"artifacts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return err
	}
	csvs := 0
	for _, a := range list.Artifacts {
		if strings.HasPrefix(a.Name, "probes-s") && strings.HasSuffix(a.Name, ".csv") {
			if a.Size == 0 {
				return fmt.Errorf("probe CSV %s is empty", a.Name)
			}
			csvs++
		}
	}
	if csvs == 0 {
		return fmt.Errorf("run %s has no probes-s*.csv artifacts (listing: %+v)", run, list.Artifacts)
	}
	log.Printf("run %s has %d per-segment probe CSV artifact(s)", run, csvs)
	return nil
}

// resumeStep extracts the step field of checkpoint.resume events.
var resumeStep = regexp.MustCompile(`"event":"checkpoint\.resume".*?"step":(\d+)`)

// survivorResumed scans the surviving workers' journals for a
// checkpoint.resume event with a nonzero step.
func survivorResumed(workers map[string]*exec.Cmd, journals map[string]string) error {
	for id := range workers {
		data, err := os.ReadFile(journals[id])
		if err != nil {
			continue
		}
		for _, m := range resumeStep.FindAllStringSubmatch(string(data), -1) {
			if step, _ := strconv.Atoi(m[1]); step > 0 {
				log.Printf("worker %s resumed from checkpoint step %d", id, step)
				return nil
			}
		}
	}
	return fmt.Errorf("no surviving worker journaled a checkpoint.resume with step > 0 — the segment restarted instead of resuming")
}

// requestRun polls the request status until its run ID is visible.
func requestRun(base, reqID string) (string, error) {
	resp, err := http.Get(base + "/v1/fleet/jobs/" + reqID)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var st struct {
		Run string `json:"run"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	if st.Run == "" {
		return "", fmt.Errorf("transient request %s reports no run ID", reqID)
	}
	return st.Run, nil
}

// artifactsHaveManifest reports whether the run's artifact listing
// already contains a committed checkpoint manifest.
func artifactsHaveManifest(base, run string) bool {
	resp, err := http.Get(base + "/v1/runs/" + run + "/artifacts")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var list struct {
		Artifacts []struct {
			Name string `json:"name"`
		} `json:"artifacts"`
	}
	if json.NewDecoder(resp.Body).Decode(&list) != nil {
		return false
	}
	for _, a := range list.Artifacts {
		if strings.HasPrefix(a.Name, "ck-") && strings.HasSuffix(a.Name, ".json") {
			return true
		}
	}
	return false
}

// activeWorker returns the ID of a worker currently holding a job.
func activeWorker(base string) (string, error) {
	resp, err := http.Get(base + "/v1/fleet/workers")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var body struct {
		Workers []struct {
			ID         string `json:"id"`
			ActiveJobs int    `json:"active_jobs"`
		} `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return "", err
	}
	for _, w := range body.Workers {
		if w.ActiveJobs > 0 {
			return w.ID, nil
		}
	}
	return "", nil
}

// waitForListen scans swserve's stderr for the "listening on" line and
// returns the base URL.
func waitForListen(r interface{ Read([]byte) (int, error) }) (string, error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.Fields(line[i+len("listening on "):])[0]
			go drain(sc)
			return "http://" + addr, nil
		}
	}
	return "", fmt.Errorf("swserve exited before listening (scan err: %v)", sc.Err())
}

// drain keeps forwarding the coordinator's stderr so its pipe never
// fills up and blocks the process.
func drain(sc *bufio.Scanner) {
	for sc.Scan() {
		fmt.Fprintln(os.Stderr, sc.Text())
	}
}

// status mirrors the /v1/fleet/jobs/{id} response shape the smoke run
// cares about.
type status struct {
	State      string `json:"state"`
	CasesTotal int    `json:"cases_total"`
	CasesDone  int    `json:"cases_done"`
	Jobs       []struct {
		ID       string `json:"id"`
		Status   string `json:"status"`
		Attempts int    `json:"attempts"`
		Worker   string `json:"worker,omitempty"`
	} `json:"jobs"`
	Table *struct {
		Cases []struct {
			Inputs  []bool `json:"inputs"`
			Outputs []struct {
				Name  string `json:"name"`
				Logic bool   `json:"logic"`
			} `json:"outputs"`
		} `json:"cases"`
	} `json:"table"`
	Results []struct {
		Outputs map[string]struct {
			Amplitude float64 `json:"Amplitude"`
			Phase     float64 `json:"Phase"`
		} `json:"outputs"`
	} `json:"results"`
}

func submit(base string, body map[string]any) (string, error) {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(base+"/v1/fleet/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var st struct {
		ID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		return "", fmt.Errorf("submit answered %d with request_id %q", resp.StatusCode, st.ID)
	}
	return st.ID, nil
}

// waitForActiveWorker polls /v1/fleet/workers until some worker holds a
// claimed job, and returns its ID.
func waitForActiveWorker(base string, deadline time.Time) (string, error) {
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/fleet/workers")
		if err == nil {
			var body struct {
				Workers []struct {
					ID         string `json:"id"`
					ActiveJobs int    `json:"active_jobs"`
				} `json:"workers"`
			}
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err == nil {
				for _, w := range body.Workers {
					if w.ActiveJobs > 0 {
						return w.ID, nil
					}
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return "", fmt.Errorf("no worker claimed a job before the deadline")
}

func waitForComplete(base string, reqID string, deadline time.Time) (*status, error) {
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/fleet/jobs/" + reqID)
		if err == nil {
			var st status
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil {
				switch st.State {
				case "complete":
					return &st, nil
				case "failed":
					return nil, fmt.Errorf("request %s failed: %+v", reqID, st.Jobs)
				}
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	return nil, fmt.Errorf("request %s not complete before the deadline", reqID)
}

// Command fleetsmoke is the CI gate for the distributed evaluation
// fleet: it builds the real swserve and swworker binaries, boots a
// coordinator with a durable queue and a short lease, attaches two
// workers, submits the full XOR truth table sharded one case per job —
// then SIGKILLs whichever worker is holding a job mid-evaluation and
// requires the request to complete anyway through lease expiry and
// requeue. It exits non-zero if the table does not complete, loses a
// case, or decodes incorrectly.
//
//	go run ./tools/fleetsmoke -journal fleet.jsonl
//
// The journal written by the coordinator is left behind for
// journalcheck and for the fleet.claim / fleet.requeue greps in the
// fleet-smoke make target.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetsmoke: ")
	journalPath := flag.String("journal", "fleet.jsonl", "coordinator journal output (validated by journalcheck afterwards)")
	timeout := flag.Duration("timeout", 3*time.Minute, "overall deadline for the smoke run")
	flag.Parse()

	if err := run(*journalPath, *timeout); err != nil {
		log.Fatal(err)
	}
}

func run(journalPath string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	tmp, err := os.MkdirTemp("", "fleetsmoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// Build the real binaries: the smoke test exercises the shipped
	// entrypoints, not in-process stand-ins.
	serveBin := filepath.Join(tmp, "swserve")
	workerBin := filepath.Join(tmp, "swworker")
	for bin, pkg := range map[string]string{serveBin: "./cmd/swserve", workerBin: "./cmd/swworker"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			return fmt.Errorf("building %s: %w", pkg, err)
		}
	}

	// Coordinator on an ephemeral port with a short lease so the killed
	// worker's job requeues within seconds.
	queueDir := filepath.Join(tmp, "queue")
	serve := exec.Command(serveBin,
		"-addr", "127.0.0.1:0",
		"-fleet-queue", queueDir,
		"-fleet-lease", "2s",
		"-journal", journalPath,
		"-workers", "2")
	stderr, err := serve.StderrPipe()
	if err != nil {
		return err
	}
	if err := serve.Start(); err != nil {
		return err
	}
	defer func() {
		serve.Process.Signal(syscall.SIGTERM) //nolint:errcheck
		serve.Wait()                          //nolint:errcheck
	}()

	base, err := waitForListen(stderr)
	if err != nil {
		return err
	}
	log.Printf("coordinator at %s", base)

	// Two workers with a per-case delay long enough that a job is
	// reliably in flight when we shoot one of them.
	workers := make(map[string]*exec.Cmd, 2)
	for _, id := range []string{"smoke-w1", "smoke-w2"} {
		w := exec.Command(workerBin,
			"-coordinator", base,
			"-id", id,
			"-workers", "2",
			"-poll", "100ms",
			"-case-delay", "1500ms")
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			return err
		}
		workers[id] = w
		defer func(w *exec.Cmd) {
			w.Process.Signal(syscall.SIGTERM) //nolint:errcheck
			w.Wait()                          //nolint:errcheck
		}(w)
	}

	// Full XOR table, one case per job: four jobs across two workers.
	reqID, err := submit(base, map[string]any{"gate": "xor", "table": true, "shard": 1})
	if err != nil {
		return err
	}
	log.Printf("submitted request %s (xor table, shard 1)", reqID)

	// Kill whichever worker claims a job first, while it is mid-case.
	victim, err := waitForActiveWorker(base, deadline)
	if err != nil {
		return err
	}
	proc, ok := workers[victim]
	if !ok {
		return fmt.Errorf("coordinator reports unknown active worker %q", victim)
	}
	if err := proc.Process.Kill(); err != nil {
		return err
	}
	proc.Wait() //nolint:errcheck
	delete(workers, victim)
	log.Printf("killed worker %s mid-job (SIGKILL)", victim)

	// The survivor must finish the whole table through requeue.
	st, err := waitForComplete(base, reqID, deadline)
	if err != nil {
		return err
	}
	if st.CasesDone != st.CasesTotal {
		return fmt.Errorf("cases lost: %d/%d done", st.CasesDone, st.CasesTotal)
	}
	if st.Table == nil {
		return fmt.Errorf("completed request has no assembled table")
	}
	if len(st.Table.Cases) != 4 {
		return fmt.Errorf("table has %d cases, want 4", len(st.Table.Cases))
	}
	for _, c := range st.Table.Cases {
		want := c.Inputs[0] != c.Inputs[1]
		for _, o := range c.Outputs {
			if o.Logic != want {
				return fmt.Errorf("case %v %s decoded %v, want %v", c.Inputs, o.Name, o.Logic, want)
			}
		}
	}
	requeued := false
	for _, j := range st.Jobs {
		if j.Attempts > 1 {
			requeued = true
		}
	}
	if !requeued {
		return fmt.Errorf("no job needed a second attempt — the kill missed its window")
	}
	log.Printf("request %s complete after worker loss: %d/%d cases, table decodes correctly",
		reqID, st.CasesDone, st.CasesTotal)
	return nil
}

// waitForListen scans swserve's stderr for the "listening on" line and
// returns the base URL.
func waitForListen(r interface{ Read([]byte) (int, error) }) (string, error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if i := strings.Index(line, "listening on "); i >= 0 {
			addr := strings.Fields(line[i+len("listening on "):])[0]
			go drain(sc)
			return "http://" + addr, nil
		}
	}
	return "", fmt.Errorf("swserve exited before listening (scan err: %v)", sc.Err())
}

// drain keeps forwarding the coordinator's stderr so its pipe never
// fills up and blocks the process.
func drain(sc *bufio.Scanner) {
	for sc.Scan() {
		fmt.Fprintln(os.Stderr, sc.Text())
	}
}

// status mirrors the /v1/fleet/jobs/{id} response shape the smoke run
// cares about.
type status struct {
	State      string `json:"state"`
	CasesTotal int    `json:"cases_total"`
	CasesDone  int    `json:"cases_done"`
	Jobs       []struct {
		ID       string `json:"id"`
		Status   string `json:"status"`
		Attempts int    `json:"attempts"`
		Worker   string `json:"worker,omitempty"`
	} `json:"jobs"`
	Table *struct {
		Cases []struct {
			Inputs  []bool `json:"inputs"`
			Outputs []struct {
				Name  string `json:"name"`
				Logic bool   `json:"logic"`
			} `json:"outputs"`
		} `json:"cases"`
	} `json:"table"`
}

func submit(base string, body map[string]any) (string, error) {
	buf, _ := json.Marshal(body)
	resp, err := http.Post(base+"/v1/fleet/jobs", "application/json", bytes.NewReader(buf))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var st struct {
		ID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusAccepted || st.ID == "" {
		return "", fmt.Errorf("submit answered %d with request_id %q", resp.StatusCode, st.ID)
	}
	return st.ID, nil
}

// waitForActiveWorker polls /v1/fleet/workers until some worker holds a
// claimed job, and returns its ID.
func waitForActiveWorker(base string, deadline time.Time) (string, error) {
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/fleet/workers")
		if err == nil {
			var body struct {
				Workers []struct {
					ID         string `json:"id"`
					ActiveJobs int    `json:"active_jobs"`
				} `json:"workers"`
			}
			err = json.NewDecoder(resp.Body).Decode(&body)
			resp.Body.Close()
			if err == nil {
				for _, w := range body.Workers {
					if w.ActiveJobs > 0 {
						return w.ID, nil
					}
				}
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	return "", fmt.Errorf("no worker claimed a job before the deadline")
}

func waitForComplete(base string, reqID string, deadline time.Time) (*status, error) {
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/v1/fleet/jobs/" + reqID)
		if err == nil {
			var st status
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err == nil {
				switch st.State {
				case "complete":
					return &st, nil
				case "failed":
					return nil, fmt.Errorf("request %s failed: %+v", reqID, st.Jobs)
				}
			}
		}
		time.Sleep(200 * time.Millisecond)
	}
	return nil, fmt.Errorf("request %s not complete before the deadline", reqID)
}

package spinwave

import (
	"context"
	"math"
	"testing"
)

// TestTableIIFromProbes is the probe-derived golden test: it reproduces
// the Table II detector-cell magnetization bands from the in-situ probe
// time-series alone, rather than from the backend's own lock-in
// readout. Each XOR input case runs under an explicit run ID; the probe
// registry then serves each run's recorder, and a Goertzel estimate
// over the retained ⟨mx⟩ window at the drive frequency must land in
// the same bands as the official readout (EXPERIMENTS.md E-T2): equal
// inputs constructive at 1±0.1 of the reference case, unequal inputs
// destructive at ≤0.1, O1 and O2 matched. The probe estimate is also
// cross-checked against the backend's readout amplitude, pinning the
// two analysis paths to each other.
func TestTableIIFromProbes(t *testing.T) {
	if testing.Short() {
		t.Skip("micromagnetic probe table: seconds of solver time")
	}
	m, err := NewMicromagnetic(XOR, WithProbes(ProbeConfig{Enabled: true, Stride: 1}))
	if err != nil {
		t.Fatal(err)
	}

	cases := [][]bool{{false, false}, {false, true}, {true, false}, {true, true}}
	type probed struct {
		inputs  []bool
		amp     map[string]float64 // probe-derived amplitude per output
		readout map[string]Readout // backend's own lock-in result
	}
	results := make([]probed, 0, len(cases))
	for _, in := range cases {
		runID := NewRunID()
		out, err := m.RunContext(WithRunID(context.Background(), runID), in)
		if err != nil {
			t.Fatal(err)
		}
		rec, ok := ProbesFor(runID)
		if !ok {
			t.Fatalf("case %v: no probe recorder published for run %s", in, runID)
		}
		p := probed{inputs: in, amp: make(map[string]float64), readout: out}
		for _, name := range []string{"O1", "O2"} {
			est, err := rec.Spectral(name, m.Freq, 4)
			if err != nil {
				t.Fatalf("case %v %s: %v", in, name, err)
			}
			p.amp[name] = est.Amplitude
			// The probe estimate and the backend's lock-in analyze the
			// same signal; they must agree closely.
			if r := out[name]; r.Amplitude > 0 {
				if d := math.Abs(est.Amplitude-r.Amplitude) / r.Amplitude; d > 0.05 {
					t.Errorf("case %v %s: probe amplitude %.4g vs readout %.4g (%.1f%% apart)",
						in, name, est.Amplitude, r.Amplitude, 100*d)
				}
			}
		}
		results = append(results, p)
	}

	// Normalize by the all-zeros reference, as the truth table does.
	ref := results[0]
	for _, name := range []string{"O1", "O2"} {
		if ref.amp[name] <= 0 {
			t.Fatalf("reference case has zero probe amplitude at %s", name)
		}
	}
	for _, p := range results {
		destructive := p.inputs[0] != p.inputs[1]
		var norm [2]float64
		for i, name := range []string{"O1", "O2"} {
			norm[i] = p.amp[name] / ref.amp[name]
			if destructive {
				if norm[i] > 0.1 {
					t.Errorf("case %v %s: destructive row normalized %.3f from probes, want <= 0.1",
						p.inputs, name, norm[i])
				}
			} else if d := math.Abs(norm[i] - 1); d > 0.1 {
				t.Errorf("case %v %s: constructive row normalized %.3f from probes, want 1±0.1",
					p.inputs, name, norm[i])
			}
		}
		if d := math.Abs(norm[0] - norm[1]); d > 0.02 {
			t.Errorf("case %v: fan-out mismatch |O1-O2| = %.4f from probes, want <= 0.02", p.inputs, d)
		}
	}
}

module spinwave

go 1.22

GO ?= go

.PHONY: all build vet test test-race bench clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages: the evaluation
# engine, the serving layer, the row-band-parallel field stencil, the
# LLG solver and the frequency-parallel gates.
test-race:
	$(GO) test -race ./internal/engine/ ./internal/mag/ ./internal/llg/ ./internal/parallel/ ./cmd/swserve/

# Quick benchmark set; the serial-vs-engine micromagnetic comparison is
# BenchmarkXORTableMicromag_{Serial,Engine8,EngineWarm}.
bench:
	$(GO) test -run '^$$' -bench 'Behavioral|Figure1|Figure2|Interference' -benchtime 1x .
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/engine/ ./internal/mag/

clean:
	$(GO) clean ./...

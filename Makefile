GO ?= go

# Statement-coverage floor for `make cover` (percent). Measured 70.6%
# with -short; the margin absorbs run-to-run jitter, not regressions.
COVER_BASELINE ?= 69.0

.PHONY: all build vet test test-race bench bench-pr3 bench-pr5 bench-pr6 bench-compare bench-smoke cover docs-lint journal-smoke health-smoke surrogate-smoke fleet-smoke checkpoint-smoke history-smoke fuzz clean

all: build vet test docs-lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrent packages: the evaluation
# engine, the serving layer, the row-band-parallel field stencil, the
# tiled LLG solver and its worker pool, the frequency-parallel gates,
# the metrics registry and the fleet observability plane.
test-race:
	$(GO) test -race ./internal/engine/ ./internal/mag/ ./internal/llg/ ./internal/tile/ ./internal/parallel/ ./internal/obs/ ./internal/journal/ ./internal/probe/ ./internal/health/ ./internal/fleet/ ./internal/fleet/faults/ ./internal/checkpoint/ ./internal/obsplane/ ./internal/runhistory/ ./cmd/swserve/ ./cmd/swworker/

# Godoc coverage gate (ISSUE 3): every exported identifier in the LLG
# core, the field evaluator, the gate backends, the flight-recorder
# packages, the checkpoint/fleet layers, the worker entrypoint and the
# root package must carry a doc comment.
docs-lint:
	$(GO) run ./tools/docslint . ./internal/llg ./internal/mag ./internal/core ./internal/probe ./internal/journal ./internal/health ./internal/fleet ./internal/fleet/faults ./internal/checkpoint ./internal/obsplane ./internal/runhistory ./cmd/swworker

# Flight-recorder smoke (ISSUE 4): a short probed XOR case writing the
# JSONL journal and Chrome trace, then schema-validating the journal.
journal-smoke:
	$(GO) run ./cmd/swsim -gate xor -inputs 10 -probe -journal journal.jsonl -trace-out trace.json -workers 2
	$(GO) run ./tools/journalcheck journal.jsonl

# Health-monitor smoke (ISSUE 5): destabilize the integrator on purpose
# by scaling dt far past the stability bound; the streaming monitor must
# fire a critical alert, record a violated verdict in the journal, and
# make swsim exit non-zero. swdoctor then scores the journal and must
# agree. The `!` inverts swsim's expected failure.
health-smoke:
	! $(GO) run ./cmd/swsim -gate xor -inputs 10 -health -dt-scale 20 -journal health.jsonl
	$(GO) run ./tools/journalcheck health.jsonl
	@grep -q '"verdict":"violated"' health.jsonl || { echo "FAIL: no violated verdict in health.jsonl"; exit 1; }
	@grep -q '"severity":"critical"' health.jsonl || { echo "FAIL: no critical alert in health.jsonl"; exit 1; }
	! $(GO) run ./tools/swdoctor health.jsonl

# Surrogate-admission smoke (ISSUE 6): build the linear-superposition
# surrogate from the real micromagnetic backend (one unit transient per
# port), push it through the engine's golden-band admission gate, and
# require a journaled "admitted" verdict. A surrogate that drifts out of
# the Tables I/II bands flips the verdict to "rejected" and swsim exits
# non-zero, failing the target before the grep even runs.
surrogate-smoke:
	$(GO) run ./cmd/swsim -gate xor -surrogate -journal surrogate.jsonl
	$(GO) run ./tools/journalcheck surrogate.jsonl
	@grep -q '"event":"surrogate.admission"' surrogate.jsonl || { echo "FAIL: no admission verdict in surrogate.jsonl"; exit 1; }
	@grep -q '"verdict":"admitted"' surrogate.jsonl || { echo "FAIL: surrogate was not admitted"; exit 1; }

# Coverage gate: total -short statement coverage must stay at or above
# COVER_BASELINE (-short skips the minutes-long micromagnetic
# integration runs; `test` still exercises them). Dev tooling under
# tools/ is excluded — it gates CI itself rather than shipping.
cover:
	$(GO) test -short -coverprofile=coverage.out $$($(GO) list ./... | grep -v '^spinwave/tools/')
	@total=$$($(GO) tool cover -func=coverage.out | tail -1 | awk '{print $$3}' | tr -d '%'); \
	awk -v t=$$total -v b=$(COVER_BASELINE) 'BEGIN { \
		if (t+0 < b+0) { printf "FAIL: coverage %.1f%% below baseline %.1f%%\n", t, b; exit 1 } \
		printf "coverage %.1f%% (baseline %.1f%%)\n", t, b }'

# Fleet smoke (ISSUE 7): build the real swserve + swworker binaries,
# boot a coordinator with a 2s lease and two workers, submit the full
# XOR table sharded one case per job, SIGKILL whichever worker holds a
# job mid-case, and require the survivor to complete the table through
# lease expiry and requeue. The journal must validate and must contain
# both a claim and a requeue event — the durable-queue recovery story,
# end to end on the shipped entrypoints. The observability plane
# (DESIGN.md §16) is gated in the same run: fleetsmoke downloads the
# merged multi-node journal and assembled Chrome trace for the killed
# request and fails unless the dead worker's shipped events survived at
# the coordinator; journalcheck -fleet and swdoctor -fleet then
# re-validate the downloaded snapshot independently.
fleet-smoke:
	$(GO) run ./tools/fleetsmoke -journal fleet.jsonl -events fleet-trace.jsonl -trace fleet-trace.json
	$(GO) run ./tools/journalcheck fleet.jsonl
	$(GO) run ./tools/journalcheck -fleet fleet-trace.jsonl
	$(GO) run ./tools/swdoctor -fleet fleet-trace.jsonl
	@grep -q '"event":"fleet.claim"' fleet.jsonl || { echo "FAIL: no fleet.claim in fleet.jsonl"; exit 1; }
	@grep -q '"event":"fleet.requeue"' fleet.jsonl || { echo "FAIL: no fleet.requeue in fleet.jsonl"; exit 1; }
	@grep -q '"status":"segment_chained"' fleet.jsonl || { echo "FAIL: no segment_chained event in fleet.jsonl"; exit 1; }
	@grep -q '"event":"fleet.journal_shipped"' fleet-trace.jsonl || { echo "FAIL: no fleet.journal_shipped in fleet-trace.jsonl"; exit 1; }

# Checkpoint/resume smoke (ISSUE 8): a golden uninterrupted swsim run,
# the same case SIGKILLed mid-transient with checkpointing on, then a
# -resume run that must land on byte-identical full-precision readouts.
# The resumed run's journal must validate and must record the
# checkpoint.resume event.
checkpoint-smoke:
	$(GO) run ./tools/checkpointsmoke -journal checkpoint.jsonl -keep-manifest checkpoint-manifest.json
	$(GO) run ./tools/journalcheck checkpoint.jsonl
	@grep -q '"event":"checkpoint.resume"' checkpoint.jsonl || { echo "FAIL: no checkpoint.resume in checkpoint.jsonl"; exit 1; }
	@grep -q '"event":"checkpoint.save"' checkpoint.jsonl || { echo "FAIL: no checkpoint.save in checkpoint.jsonl"; exit 1; }

# Run-history / retention smoke (ISSUE 10): boot swserve with history
# indexing and a trace budget of one, serve evals and a table, run two
# fleet requests back to back, and require the retention sweeper to
# reclaim the older request's fleet-journal trace — journaled as
# retention.gc with nonzero bytes — while the newer trace still answers
# its events endpoint and everything stays queryable through
# /v1/history and the swhistory CLI. journalcheck then validates the
# retention.gc / history.indexed schemas, and the greps pin the events
# the smoke's assertions rode on.
history-smoke:
	$(GO) run ./tools/historysmoke -journal history-fleet.jsonl -catalog history-catalog.jsonl
	$(GO) run ./tools/journalcheck history-fleet.jsonl
	@grep -q '"event":"retention.gc"' history-fleet.jsonl || { echo "FAIL: no retention.gc in history-fleet.jsonl"; exit 1; }
	@grep -q '"event":"history.indexed"' history-fleet.jsonl || { echo "FAIL: no history.indexed in history-fleet.jsonl"; exit 1; }

# Fuzz the OVF parser, the fleet job-file parser and the checkpoint
# manifest parser beyond their checked-in seeds.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzOVFRead -fuzztime 30s ./internal/ovf/
	$(GO) test -run '^$$' -fuzz FuzzJobFile -fuzztime 30s ./internal/fleet/
	$(GO) test -run '^$$' -fuzz FuzzManifest -fuzztime 30s ./internal/checkpoint/

# Quick benchmark set; the serial-vs-engine micromagnetic comparison is
# BenchmarkXORTableMicromag_{Serial,Engine8,EngineWarm}.
bench:
	$(GO) test -run '^$$' -bench 'Behavioral|Figure1|Figure2|Interference' -benchtime 1x .
	$(GO) test -run '^$$' -bench . -benchtime 1x ./internal/engine/ ./internal/mag/

# Full stepper benchmark: reference vs fused core at 1/2/4/8 workers on
# the XOR and MAJ3 truth tables; regenerates the committed artifact.
bench-pr3:
	$(GO) run ./cmd/swbench -out BENCH_pr3.json

# PR-5 stepper benchmark artifact (no surrogate section).
bench-pr5:
	$(GO) run ./cmd/swbench -surrogate=false -out BENCH_pr5.json

# Current benchmark artifact (ISSUE 6): stepper modes plus the warm
# linear-superposition surrogate per gate (build cost, admission
# verdict, per-case speedup over fused-1).
bench-pr6:
	$(GO) run ./cmd/swbench -out BENCH_pr6.json

# Regression gate: rerun the benchmark and compare the *normalized*
# ratios against the committed BENCH_pr6.json baseline — fused-8
# steps/s ÷ the same run's reference steps/s for the stepper, and the
# warm surrogate's per-case speedup over the same run's fused-1 solver
# — so the gate tracks relative performance rather than the CI host's
# absolute speed. Fails on a >15% regression, a rejected surrogate, or
# a warm-surrogate speedup under the 50x floor.
bench-compare:
	$(GO) run ./cmd/swbench -quick -out BENCH_quick.json -compare BENCH_pr6.json

# CI smoke variant: XOR only, one case per mode. Exits non-zero if the
# 8-worker trajectory diverges from serial by even one bit. Writes to a
# scratch file so it never clobbers the committed full-run artifact.
bench-smoke:
	$(GO) run ./cmd/swbench -quick -out BENCH_quick.json

clean:
	$(GO) clean ./...

package spinwave

import (
	"spinwave/internal/checkpoint"
	"spinwave/internal/core"
)

// Checkpoint/resume re-exports (DESIGN.md §15): periodic solver
// snapshots and bit-identical continuation of interrupted transients.
// See internal/checkpoint for full documentation.
type (
	// CheckpointConfig enables periodic checkpointing for a micromagnetic
	// backend; pass it to WithCheckpoint. Dir names the snapshot
	// directory, Resume continues from the newest valid snapshot, and
	// StopAtStep pauses the run at a segment boundary.
	CheckpointConfig = checkpoint.Config
	// CheckpointSnapshot is the receipt of one committed snapshot,
	// delivered to CheckpointConfig.OnSnapshot.
	CheckpointSnapshot = checkpoint.Snapshot
	// CheckpointManifest is the JSON sidecar describing one snapshot.
	CheckpointManifest = checkpoint.Manifest
)

// ErrRunPaused is the sentinel a checkpointed run returns when it stops
// on purpose at its configured segment boundary (CheckpointConfig.
// StopAtStep) after committing a snapshot. Match with errors.Is; the
// partial state is durable and a later run with Resume set continues it.
var ErrRunPaused = checkpoint.ErrPaused

// WithCheckpoint enables periodic checkpointing and exact resume for
// every logic-case run of a micromagnetic backend (DESIGN.md §15).
var WithCheckpoint = core.WithCheckpoint

package spinwave

import (
	"context"
	"sync"

	"spinwave/internal/core"
	"spinwave/internal/detect"
	"spinwave/internal/engine"
	"spinwave/internal/layout"
)

// Engine re-exports: the concurrent evaluation engine fans truth-table
// cases, sweep points, and parallel-word channels over a bounded worker
// pool with an LRU result cache and in-flight request coalescing. See
// internal/engine for full documentation.
type (
	// Engine is the concurrent gate-evaluation engine.
	Engine = engine.Engine
	// EngineOption configures NewEngine.
	EngineOption = engine.Option
	// EngineStats is a snapshot of an engine's counters.
	EngineStats = engine.Stats
	// Readout is one output probe's lock-in measurement.
	Readout = detect.Readout
)

// NewEngine builds a concurrent evaluation engine. With no options it
// uses runtime.NumCPU() workers and a 4096-entry result cache.
func NewEngine(opts ...EngineOption) *Engine { return engine.New(opts...) }

// WithEngineWorkers sets the engine worker-pool size. (Distinct from
// WithWorkers, which parallelizes the field stencil inside one
// micromagnetic transient.)
func WithEngineWorkers(n int) EngineOption { return engine.WithWorkers(n) }

// WithEngineCacheSize sets the engine LRU capacity in cached case
// readouts; 0 disables caching.
func WithEngineCacheSize(n int) EngineOption { return engine.WithCacheSize(n) }

// Tiered result-store re-exports: an engine answers each request from
// the cheapest tier that can — in-memory LRU, disk-backed persistent
// store, admitted linear-superposition surrogate, exact recompute — and
// every result reports which tier produced it.
type (
	// EvalMode selects which tiers an evaluation may be served from
	// (EvalModeAuto, EvalModeDirect, EvalModeSurrogateOnly).
	EvalMode = engine.Mode
	// EvalSource identifies the tier that produced a result.
	EvalSource = engine.Source
	// EvalResult is a tiered evaluation outcome: readouts plus the tier
	// and backend fingerprint they came from.
	EvalResult = engine.EvalResult
	// DiskStore is the persistent tier of the result store: one atomic,
	// corruption-tolerant JSON entry per evaluated case.
	DiskStore = engine.DiskStore
)

// Eval-mode and source constants; see internal/engine for tier order.
const (
	// EvalModeDirect serves from memory → disk → exact recompute.
	EvalModeDirect = engine.ModeDirect
	// EvalModeAuto additionally tries an admitted surrogate before
	// falling back to exact recompute.
	EvalModeAuto = engine.ModeAuto
	// EvalModeSurrogateOnly serves exclusively from an admitted
	// surrogate, failing with ErrSurrogateUnavailable otherwise.
	EvalModeSurrogateOnly = engine.ModeSurrogateOnly

	// EvalSourceCache marks a result served from the in-memory LRU.
	EvalSourceCache = engine.SourceCache
	// EvalSourceDisk marks a result served from the persistent store.
	EvalSourceDisk = engine.SourceDisk
	// EvalSourceSurrogate marks a result superposed by a surrogate.
	EvalSourceSurrogate = engine.SourceSurrogate
	// EvalSourceMicromag marks a full micromagnetic recompute.
	EvalSourceMicromag = engine.SourceMicromag
	// EvalSourceBehavioral marks a behavioral-model recompute.
	EvalSourceBehavioral = engine.SourceBehavioral
)

// ErrSurrogateUnavailable reports a surrogate-only evaluation with no
// admitted surrogate model for the backend. Match with errors.Is.
var ErrSurrogateUnavailable = engine.ErrSurrogateUnavailable

// OpenDiskStore opens (creating if needed) a disk-backed result store
// rooted at dir; attach it to an engine with WithEngineDiskStore.
func OpenDiskStore(dir string) (*DiskStore, error) { return engine.OpenDiskStore(dir) }

// WithEngineDiskStore attaches a persistent result store to the engine;
// persisted entries warm the in-memory cache at construction.
func WithEngineDiskStore(d *DiskStore) EngineOption { return engine.WithDiskStore(d) }

var (
	defaultEngineOnce sync.Once
	defaultEngine     *Engine
)

// DefaultEngine returns the lazily-initialized package-level engine that
// backs MajorityTruthTable, XORTruthTable and DerivedTruthTable. Build a
// dedicated engine with NewEngine when you need separate tuning or
// isolated statistics.
func DefaultEngine() *Engine {
	defaultEngineOnce.Do(func() { defaultEngine = engine.New() })
	return defaultEngine
}

// Sentinel errors shared by the gate constructors, backends and layout
// lookups. Match with errors.Is.
var (
	// ErrUnknownGate reports a gate kind outside the supported set.
	ErrUnknownGate = layout.ErrUnknownGate
	// ErrBadInputCount reports an input vector whose length does not
	// match the gate's input count.
	ErrBadInputCount = layout.ErrBadInputCount
	// ErrUnknownComponent reports an unknown named component (layout
	// node, render component, material preset).
	ErrUnknownComponent = layout.ErrUnknownComponent
)

// RunContext evaluates one input case with cancellation: backends that
// support contexts (both built-in backends do) abort mid-integration
// within one solver step of ctx expiring.
func RunContext(ctx context.Context, b Backend, inputs []bool) (map[string]Readout, error) {
	return core.RunContext(ctx, b, inputs)
}

// MajorityTruthTableContext reproduces Table I on any MAJ3 backend, with
// the input cases fanned out over the default engine's worker pool and
// ctx cancelling stragglers.
func MajorityTruthTableContext(ctx context.Context, b Backend) (*TruthTable, error) {
	return DefaultEngine().MajorityTable(ctx, b)
}

// XORTruthTableContext reproduces Table II on an XOR backend through the
// default engine; inverted gives the XNOR gate.
func XORTruthTableContext(ctx context.Context, b Backend, inverted bool) (*TruthTable, error) {
	return DefaultEngine().XORTable(ctx, b, inverted)
}

// DerivedTruthTableContext evaluates (N)AND/(N)OR on a MAJ3 backend
// (§III-A) through the default engine.
func DerivedTruthTableContext(ctx context.Context, b Backend, d DerivedGate) (*TruthTable, error) {
	return DefaultEngine().DerivedTable(ctx, b, d)
}

package spinwave

import (
	"spinwave/internal/health"
)

// Health-monitor re-exports (DESIGN.md §12): the streaming invariant
// watchdog that rides the same observer hook as the flight recorder and
// judges each run — healthy, degraded or violated. See internal/health
// for full documentation.
type (
	// HealthConfig selects which invariants a monitored run checks and
	// their thresholds; pass it to WithHealth.
	HealthConfig = health.Config
	// HealthReport is the frozen verdict + alerts of a monitored run.
	HealthReport = health.Report
	// HealthAlert is one fired invariant rule.
	HealthAlert = health.Alert
	// HealthSeverity ranks an alert (info, warn, critical).
	HealthSeverity = health.Severity
	// HealthVerdict is the per-run outcome (healthy, degraded, violated).
	HealthVerdict = health.Verdict
)

// Health verdict values.
const (
	// VerdictHealthy: no warn or critical alert fired.
	VerdictHealthy = health.Healthy
	// VerdictDegraded: at least one warn alert fired, none critical.
	VerdictDegraded = health.Degraded
	// VerdictViolated: at least one critical alert fired.
	VerdictViolated = health.Violated
)

// ErrHealthAbort is the sentinel wrapped by evaluation errors when the
// numerical health monitor aborted the run on a critical alert
// (HealthConfig.AbortOnCritical). Match with errors.Is.
var ErrHealthAbort = health.ErrAborted

// HealthFor returns the health report published by a monitored run (see
// WithHealth), or false if the run is unknown or was not monitored.
func HealthFor(runID string) (HealthReport, bool) { return health.Default().Get(runID) }

// MonitoredRuns returns the run IDs with retained health reports,
// oldest first.
func MonitoredRuns() []string { return health.Default().Runs() }

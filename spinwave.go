package spinwave

import (
	"context"
	"fmt"
	"io"
	"math"

	"spinwave/internal/circuit"
	"spinwave/internal/core"
	"spinwave/internal/dispersion"
	"spinwave/internal/energy"
	"spinwave/internal/ladder"
	"spinwave/internal/layout"
	"spinwave/internal/llg"
	"spinwave/internal/material"
	"spinwave/internal/measure"
	"spinwave/internal/mumax"
	"spinwave/internal/parallel"
	"spinwave/internal/render"
	"spinwave/internal/report"
	"spinwave/internal/units"
)

// Re-exported core types. See the internal packages for full
// documentation of each.
type (
	// Spec parameterizes the triangle gate geometry (paper Figure 3/4).
	Spec = layout.Spec
	// Layout is a gate geometry plus its signal-flow graph.
	Layout = layout.Layout
	// Material holds ferromagnetic film parameters.
	Material = material.Params
	// GateKind identifies a gate structure (MAJ3, MAJ3Single, XOR).
	GateKind = core.GateKind
	// Backend evaluates a gate (behavioral or micromagnetic).
	Backend = core.Backend
	// TruthTable is a full input-space evaluation (paper Tables I/II).
	TruthTable = core.TruthTable
	// CaseResult is one truth-table row.
	CaseResult = core.CaseResult
	// MicromagConfig tunes the micromagnetic backend.
	MicromagConfig = core.MicromagConfig
	// Micromagnetic is the full-simulation backend.
	Micromagnetic = core.Micromagnetic
	// Behavioral is the phasor-network backend.
	Behavioral = core.Behavioral
	// DerivedGate selects (N)AND/(N)OR on the MAJ3 structure (§III-A).
	DerivedGate = core.DerivedGate
	// Table is an aligned text table for reports.
	Table = report.Table
)

// Gate kinds.
const (
	// MAJ3 is the fan-out-of-2 3-input Majority gate (Figure 3).
	MAJ3 = core.MAJ3
	// MAJ3Single is the single-output Majority variant (§III-A).
	MAJ3Single = core.MAJ3Single
	// XOR is the fan-out-of-2 2-input XOR gate (Figure 4).
	XOR = core.XOR
	// MAJ5 is the fan-in-of-5 Majority extension (§III-A).
	MAJ5 = core.MAJ5
)

// Derived gates on the MAJ3 structure.
const (
	// AND pins I3 = 0.
	AND = core.AND
	// OR pins I3 = 1.
	OR = core.OR
	// NAND pins I3 = 0 with inverted detection.
	NAND = core.NAND
	// NOR pins I3 = 1 with inverted detection.
	NOR = core.NOR
)

// Integration schemes for MicromagConfig.Scheme.
const (
	// SchemeRK4 is the classical 4th-order Runge–Kutta integrator.
	SchemeRK4 = llg.RK4
	// SchemeHeun is the 2nd-order Heun integrator (faster per step).
	SchemeHeun = llg.Heun
)

// PaperSpec returns the paper's §IV-A dimensions (λ=55 nm, w=50 nm,
// d1..d4 = 330/880/220/55 nm).
func PaperSpec() Spec { return layout.PaperSpec() }

// PaperMicromagSpec is PaperSpec with the single-mode width used by the
// in-repo micromagnetic solver (see DESIGN.md §2).
func PaperMicromagSpec() Spec { return layout.PaperMicromagSpec() }

// ReducedSpec returns a laptop-scale device with the same interference
// design rules (all paths integer multiples of λ).
func ReducedSpec() Spec { return layout.ReducedSpec() }

// FeCoB returns the paper's Fe60Co20B20 material parameters.
func FeCoB() Material { return material.FeCoB() }

// MaterialByName looks up a built-in material preset ("fecob", "yig",
// "permalloy").
func MaterialByName(name string) (Material, error) { return material.ByName(name) }

// Functional options for the backend constructors. MicromagConfig
// itself implements MicromagOption (it replaces the accumulated config
// wholesale), so pre-options call sites keep compiling; passing a bare
// config is the deprecated path.
type (
	// BehavioralOption customizes NewBehavioral.
	BehavioralOption = core.BehavioralOption
	// MicromagOption customizes NewMicromagnetic.
	MicromagOption = core.MicromagOption
)

var (
	// WithJunctionLoss sets the behavioral per-junction amplitude
	// transmission factor (default 0.9).
	WithJunctionLoss = core.WithJunctionLoss
	// WithAttenuationLength overrides the behavioral 1/e attenuation
	// length instead of deriving it from the dispersion.
	WithAttenuationLength = core.WithAttenuationLength
	// WithSpec sets the micromagnetic gate geometry (default ReducedSpec).
	WithSpec = core.WithSpec
	// WithMaterial sets the micromagnetic film material (default FeCoB).
	WithMaterial = core.WithMaterial
	// WithScheme selects the LLG integrator (SchemeRK4 or SchemeHeun).
	WithScheme = core.WithScheme
	// WithWorkers runs each transient's LLG stepping kernels on a
	// persistent pool of that many goroutines, banded over mesh rows;
	// trajectories are bit-identical for any worker count.
	WithWorkers = core.WithWorkers
	// WithReferenceStepper forces the original term-by-term LLG stepper
	// (the benchmarking baseline) instead of the fused tiled core.
	WithReferenceStepper = core.WithReferenceStepper
	// WithCellSize sets the square cell edge in meters (default λ/11).
	WithCellSize = core.WithCellSize
	// WithDriveField sets the antenna RF amplitude in Tesla.
	WithDriveField = core.WithDriveField
	// WithTemperature enables the stochastic thermal field.
	WithTemperature = core.WithTemperature
	// WithRegionMutator post-processes the rasterized region (§IV-D).
	WithRegionMutator = core.WithRegionMutator
	// WithI3PhaseTrim sets the I3 drive-phase trim in radians.
	WithI3PhaseTrim = core.WithI3PhaseTrim
	// WithMeasurePeriods sets the lock-in window in drive periods.
	WithMeasurePeriods = core.WithMeasurePeriods
	// WithProbes attaches the in-situ flight recorder to every run
	// (DESIGN.md §11); recorders are published via ProbesFor.
	WithProbes = core.WithProbes
	// WithHealth attaches the numerical health monitor to every run
	// (DESIGN.md §12); reports are published via HealthFor.
	WithHealth = core.WithHealth
	// WithDtScale multiplies the stability-bounded LLG time step
	// (default 1; > 1 deliberately destabilizes the integrator).
	WithDtScale = core.WithDtScale
)

// NewBehavioral builds the fast phasor backend for a gate.
func NewBehavioral(kind GateKind, spec Spec, mat Material, opts ...BehavioralOption) (*Behavioral, error) {
	return core.NewBehavioral(kind, spec, mat, opts...)
}

// NewMicromagnetic builds the full-simulation backend for a gate. Legacy
// call sites passing a bare MicromagConfig keep working; new code should
// pass WithSpec/WithMaterial/WithScheme/... options.
func NewMicromagnetic(kind GateKind, opts ...MicromagOption) (*Micromagnetic, error) {
	return core.NewMicromagnetic(kind, opts...)
}

// NewLadderBehavioral builds the ladder-shape baseline backend [22,23].
func NewLadderBehavioral(spec Spec, mat Material) (Backend, error) {
	return ladder.NewBackend(spec, mat)
}

// MajorityTruthTable reproduces Table I on any MAJ3 backend. The cases
// run concurrently on the package default engine; use
// MajorityTruthTableContext for cancellation or a dedicated engine's
// MajorityTable for isolated tuning.
func MajorityTruthTable(b Backend) (*TruthTable, error) {
	return MajorityTruthTableContext(context.Background(), b)
}

// XORTruthTable reproduces Table II on an XOR backend via the default
// engine; inverted gives the XNOR gate.
func XORTruthTable(b Backend, inverted bool) (*TruthTable, error) {
	return XORTruthTableContext(context.Background(), b, inverted)
}

// DerivedTruthTable evaluates (N)AND/(N)OR on a MAJ3 backend (§III-A)
// via the default engine.
func DerivedTruthTable(b Backend, d DerivedGate) (*TruthTable, error) {
	return DerivedTruthTableContext(context.Background(), b, d)
}

// FormatTruthTable renders a truth table in the paper's Table I/II style:
// one row per input case with the normalized output magnetization and
// decoded logic per output.
func FormatTruthTable(tt *TruthTable) string {
	if tt == nil || len(tt.Cases) == 0 {
		return ""
	}
	nIn := len(tt.Cases[0].Inputs)
	caseHeader := "{"
	for i := nIn; i >= 1; i-- {
		caseHeader += fmt.Sprintf("I%d", i)
		if i > 1 {
			caseHeader += ","
		}
	}
	caseHeader += "}"
	headers := []string{caseHeader}
	for _, o := range tt.Cases[0].Outputs {
		headers = append(headers, o.Name+" norm", o.Name+" logic")
	}
	headers = append(headers, "expected", "correct")
	t := report.NewTable(fmt.Sprintf("%s truth table (%s backend, %s detection)", tt.Gate, tt.Backend, tt.Detection), headers...)
	for _, c := range tt.Cases {
		row := []string{report.Bits(c.Inputs)}
		for _, o := range c.Outputs {
			row = append(row, fmt.Sprintf("%.3f", o.Normalized), report.Bool01(o.Logic))
		}
		row = append(row, report.Bool01(c.Expected), fmt.Sprintf("%v", c.Correct))
		t.AddRow(row...)
	}
	return t.String()
}

// TableIII renders the paper's Table III performance comparison.
func TableIII() *Table {
	t := report.NewTable("Table III: performance comparison",
		"design", "technology", "function", "cells", "delay (ns)", "energy (aJ)")
	for _, e := range energy.ComparisonTable() {
		t.AddRow(e.Design, e.Tech, e.Function,
			fmt.Sprintf("%d", e.Cells),
			trimFloat(e.DelayNS), trimFloat(e.EnergyAJ))
	}
	return t
}

// TableIIIRatios renders the derived §IV-D comparison claims next to the
// figures the paper quotes.
func TableIIIRatios() *Table {
	t := report.NewTable("Derived comparison ratios (from Table III values)",
		"claim", "computed", "paper")
	for _, r := range energy.Ratios() {
		t.AddRow(r.Name, fmt.Sprintf("%.1f%s", r.Value, r.Unit), fmt.Sprintf("%g%s", r.PaperVal, r.Unit))
	}
	return t
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	for len(s) > 0 && s[len(s)-1] == '0' {
		s = s[:len(s)-1]
	}
	if len(s) > 0 && s[len(s)-1] == '.' {
		s = s[:len(s)-1]
	}
	return s
}

// Circuit-level re-exports: build larger circuits out of FO2 gates and
// roll up energy/delay/fan-out (see internal/circuit).
type (
	// Netlist is a combinational circuit of spin-wave components.
	Netlist = circuit.Netlist
	// Net is a named signal wire.
	Net = circuit.Net
	// Component is a circuit element with logic and cost.
	Component = circuit.Component
	// AdderStyle selects the gate family used to build adders.
	AdderStyle = circuit.AdderStyle
	// AdderComparison summarizes one adder build.
	AdderComparison = circuit.AdderComparison
)

// Adder styles.
const (
	// TriangleFO2 uses this work's triangle FO2 gates.
	TriangleFO2 = circuit.TriangleFO2
	// LadderFO2 uses the ladder baseline gates [22,23].
	LadderFO2 = circuit.LadderFO2
	// SingleWithRepeaters uses single-output gates plus couplers and
	// repeaters.
	SingleWithRepeaters = circuit.SingleWithRepeaters
)

// NewNetlist creates an empty circuit with the given primary inputs.
func NewNetlist(name string, primaryInputs ...Net) *Netlist {
	return circuit.NewNetlist(name, primaryInputs...)
}

// Gate component constructors (triangle FO2 family and helpers).
var (
	// MAJ3Gate returns a triangle FO2 Majority circuit component.
	MAJ3Gate = circuit.MAJ3
	// MAJ3SingleGate returns the single-output Majority variant (§III-A).
	MAJ3SingleGate = circuit.MAJ3Single
	// XORGate returns a triangle FO2 XOR circuit component.
	XORGate = circuit.XOR
	// XNORGate returns a triangle FO2 XNOR circuit component.
	XNORGate = circuit.XNOR
	// ANDGate returns the derived AND component (MAJ3, I3=0).
	ANDGate = circuit.AND
	// ORGate returns the derived OR component (MAJ3, I3=1).
	ORGate = circuit.OR
	// RepeaterComponent returns a wave repeater [37].
	RepeaterComponent = func() Component { return circuit.Repeater{} }
	// SplitterComponent returns an n-way directional coupler [36].
	SplitterComponent = func(ways int) Component { return circuit.Splitter{Ways: ways} }
)

// FullAdder builds a 1-bit full adder (sum = XOR·XOR, carry = MAJ3).
func FullAdder(style AdderStyle) (*Netlist, error) { return circuit.FullAdder(style) }

// RippleCarryAdder builds an n-bit ripple-carry adder.
func RippleCarryAdder(bits int, style AdderStyle) (*Netlist, error) {
	return circuit.RippleCarryAdder(bits, style)
}

// CompareAdders builds the n-bit adder in all three styles and reports
// gate count, energy and critical delay.
func CompareAdders(bits int) ([]AdderComparison, error) { return circuit.CompareAdders(bits) }

// n-bit data-parallel gate re-exports (frequency-division multiplexing,
// the authors' companion paper ref [9]; see internal/parallel).
type (
	// ParallelGate is an n-bit frequency-multiplexed behavioral gate.
	ParallelGate = parallel.Gate
	// ParallelMicromagXOR is the full-solver n-bit XOR.
	ParallelMicromagXOR = parallel.MicromagXOR
	// Word is an n-bit value, one bit per frequency channel.
	Word = parallel.Word
	// Channel is one frequency-multiplexed bit lane.
	Channel = parallel.Channel
)

// NewParallelGate plans frequency channels and builds an n-bit
// behavioral gate (XOR or MAJ3).
func NewParallelGate(kind GateKind, spec Spec, mat Material, nbits int) (*ParallelGate, error) {
	return parallel.NewGate(kind, spec, mat, nbits)
}

// NewParallelMicromagXOR builds the full-solver n-bit parallel XOR.
func NewParallelMicromagXOR(spec Spec, mat Material, nbits int) (*ParallelMicromagXOR, error) {
	return parallel.NewMicromagXOR(spec, mat, nbits)
}

// WordFromUint builds an n-bit word from an integer (bit 0 = LSB).
func WordFromUint(v uint, n int) Word { return parallel.WordFromUint(v, n) }

// DispersionModel returns the forward-volume dispersion model for a film.
// Mode "full" is the Kalinikos–Slavin expression; "local" matches the
// in-repo solver.
func DispersionModel(mat Material, thickness float64, mode string) (dispersion.Model, error) {
	var m dispersion.Mode
	switch mode {
	case "full":
		m = dispersion.Full
	case "local", "local-demag":
		m = dispersion.LocalDemag
	default:
		return dispersion.Model{}, fmt.Errorf("spinwave: unknown dispersion mode %q (want full or local)", mode)
	}
	return dispersion.New(mat, thickness, m)
}

// MeasuredDispersionPoint is one (f, k) sample extracted from a driven
// micromagnetic strip.
type MeasuredDispersionPoint = measure.DispersionPoint

// MeasureDispersion drives a waveguide strip at each frequency in the
// full solver and extracts the realized wave number and attenuation
// length — the solver-validation experiment of EXPERIMENTS.md.
func MeasureDispersion(mat Material, freqs []float64) ([]MeasuredDispersionPoint, error) {
	return measure.Dispersion(measure.StripConfig{Mat: mat}, freqs)
}

// DriveFrequency returns the drive frequency (Hz) that produces
// wavelength lambda in the in-repo solver for the given material and
// film thickness.
func DriveFrequency(mat Material, thickness, lambda float64) (float64, error) {
	m, err := dispersion.New(mat, thickness, dispersion.LocalDemag)
	if err != nil {
		return 0, err
	}
	return m.FrequencyForWavelength(lambda), nil
}

// RenderSnapshotPNG runs the micromagnetic backend for one input case and
// writes a Figure 5 style blue/white/red PNG of the chosen component
// ("mx", "my", "mz" or "in-plane") to w.
func RenderSnapshotPNG(w io.Writer, m *Micromagnetic, inputs []bool, component string, pixelSize int) error {
	comp, err := parseComponent(component)
	if err != nil {
		return err
	}
	field, mesh, region, err := m.Snapshot(inputs)
	if err != nil {
		return err
	}
	return render.WritePNG(w, mesh, region, field, comp, render.Options{PixelSize: pixelSize})
}

// RenderSnapshotASCII runs the micromagnetic backend for one input case
// and returns a terminal preview of the wave pattern.
func RenderSnapshotASCII(m *Micromagnetic, inputs []bool, component string, maxWidth int) (string, error) {
	comp, err := parseComponent(component)
	if err != nil {
		return "", err
	}
	field, mesh, region, err := m.Snapshot(inputs)
	if err != nil {
		return "", err
	}
	return render.ASCII(mesh, region, field, comp, maxWidth)
}

func parseComponent(component string) (render.Component, error) {
	switch component {
	case "mx", "":
		return render.MX, nil
	case "my":
		return render.MY, nil
	case "mz":
		return render.MZ, nil
	case "in-plane", "amplitude":
		return render.InPlane, nil
	default:
		return 0, fmt.Errorf("spinwave: %w: render component %q", ErrUnknownComponent, component)
	}
}

// MuMaxScript generates a MuMax3 .mx3 program for one gate case so the
// in-Go results can be cross-checked against the paper's simulator.
func MuMaxScript(kind GateKind, spec Spec, mat Material, inputs []bool) (string, error) {
	var l *Layout
	var err error
	switch kind {
	case core.MAJ3:
		l, err = layout.BuildMAJ3(spec, false)
	case core.MAJ3Single:
		l, err = layout.BuildMAJ3(spec, true)
	case core.XOR:
		l, err = layout.BuildXOR(spec)
	case core.MAJ5:
		l, err = layout.BuildMAJ5(spec)
	default:
		return "", fmt.Errorf("spinwave: %w: kind %v", ErrUnknownGate, kind)
	}
	if err != nil {
		return "", err
	}
	names := kind.InputNames()
	if len(inputs) != len(names) {
		return "", fmt.Errorf("spinwave: %w: %s needs %d inputs, got %d", ErrBadInputCount, kind, len(names), len(inputs))
	}
	in := map[string]bool{}
	for i, n := range names {
		in[n] = inputs[i]
	}
	freq, err := DriveFrequency(mat, units.NM(1), spec.Lambda)
	if err != nil {
		return "", err
	}
	return mumax.Script(mumax.ScriptConfig{
		Layout:   l,
		Mat:      mat,
		CellSize: spec.Lambda / 11,
		Freq:     freq,
		B0:       2e-3,
		Duration: 5e-9,
		Inputs:   in,
	})
}

// WaveProfile samples a·sin(kx + φ) over n points of one-or-more
// wavelengths — the Figure 1 illustration of spin-wave parameters
// (wavelength, wave number, phase, amplitude).
func WaveProfile(lambda, amplitude, phase float64, wavelengths float64, n int) ([]float64, []float64, error) {
	if lambda <= 0 || n < 2 || wavelengths <= 0 {
		return nil, nil, fmt.Errorf("spinwave: invalid wave profile parameters")
	}
	k := units.WaveNumber(lambda)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		x := wavelengths * lambda * float64(i) / float64(n-1)
		xs[i] = x
		ys[i] = amplitude * math.Sin(k*x+phase)
	}
	return xs, ys, nil
}

// Interfere returns the resulting amplitude of two equal-frequency waves
// with the given amplitudes and phases — the Figure 2 constructive/
// destructive interference demonstration in phasor form.
func Interfere(a1, phi1, a2, phi2 float64) (amplitude, phase float64) {
	re := a1*math.Cos(phi1) + a2*math.Cos(phi2)
	im := a1*math.Sin(phi1) + a2*math.Sin(phi2)
	return math.Hypot(re, im), math.Atan2(im, re)
}
